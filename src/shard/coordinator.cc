#include "shard/coordinator.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "service/client_session.h"
#include "sql/parser.h"
#include "sql/query_functions.h"
#include "sql/settings.h"

namespace hermes::shard {

namespace {

Status ShardError(size_t k, const Status& st) {
  return Status(st.code(),
                "shard " + std::to_string(k) + ": " + st.message());
}

}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Coordinator::Coordinator(service::ServiceConfig config, storage::Env* env,
                         std::unique_ptr<Partitioner> partitioner)
    : config_(std::move(config)), partitioner_(std::move(partitioner)) {
  if (env == nullptr) {
    owned_env_ = storage::Env::NewMemEnv();
    env = owned_env_.get();
  }
  env_ = env;
  if (config_.threads > 1) {
    exec_ = std::make_unique<exec::ExecContext>(config_.threads);
  }
}

StatusOr<std::unique_ptr<Coordinator>> Coordinator::Start(
    service::ServiceConfig config, storage::Env* env,
    std::unique_ptr<Partitioner> partitioner) {
  HERMES_RETURN_NOT_OK(config.Validate());
  if (partitioner == nullptr) partitioner = MakeHashPartitioner();
  std::unique_ptr<Coordinator> coord(
      new Coordinator(std::move(config), env, std::move(partitioner)));
  for (size_t k = 0; k < coord->config_.shards; ++k) {
    StatusOr<std::unique_ptr<service::Server>> shard =
        service::Server::Start(coord->config_.ShardServerOptions(k),
                               coord->env_);
    if (!shard.ok()) {
      // Atomic startup: naming the failing shard, and unwinding the
      // already-started ones (the coordinator destructor shuts them
      // down), so a half-started topology never escapes.
      return ShardError(k, shard.status());
    }
    coord->shards_.push_back(std::move(*shard));
  }
  return coord;
}

Coordinator::~Coordinator() { Shutdown(); }

void Coordinator::Shutdown() {
  {
    common::MutexLock lock(&shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  for (auto& shard : shards_) shard->Shutdown();
}

// ---------------------------------------------------------------------------
// Data plane: routing, flush, stats
// ---------------------------------------------------------------------------

Status Coordinator::RegisterStore(const std::string& name,
                                  traj::TrajectoryStore store) {
  const size_t n = shards_.size();
  std::vector<traj::TrajectoryStore> parts(n);
  for (traj::TrajectoryId i = 0; i < store.NumTrajectories(); ++i) {
    const traj::Trajectory& t = store.Get(i);
    const size_t k = partitioner_->ShardOf(t.object_id(), n);
    StatusOr<traj::TrajectoryId> added = parts[k].Add(t);
    if (!added.ok()) return added.status();
  }
  // Every shard gets the MOD — possibly empty — so broadcast DDL and
  // scattered queries never see a partial catalog.
  for (size_t k = 0; k < n; ++k) {
    Status st = shards_[k]->RegisterStore(name, std::move(parts[k]));
    if (!st.ok()) return ShardError(k, st);
  }
  return Status::OK();
}

StatusOr<std::pair<size_t, size_t>> Coordinator::LoadMod(
    const std::string& name, const std::string& path) {
  traj::TrajectoryStore loaded;
  HERMES_RETURN_NOT_OK(loaded.LoadCsv(path));
  const std::string canonical = sql::CanonicalModName(name);
  // Create-if-absent, in lockstep: the MOD exists on all shards or none.
  if (!shards_[0]->SnapshotMod(canonical).ok()) {
    for (size_t k = 0; k < shards_.size(); ++k) {
      Status st = shards_[k]->CreateMod(canonical);
      if (!st.ok()) return ShardError(k, st);
    }
  }
  std::vector<std::vector<traj::Trajectory>> batches(shards_.size());
  for (traj::TrajectoryId i = 0; i < loaded.NumTrajectories(); ++i) {
    const traj::Trajectory& t = loaded.Get(i);
    batches[partitioner_->ShardOf(t.object_id(), shards_.size())].push_back(t);
  }
  for (size_t k = 0; k < shards_.size(); ++k) {
    if (batches[k].empty()) continue;
    StatusOr<uint64_t> ticket =
        shards_[k]->EnqueueInsert(canonical, std::move(batches[k]));
    if (!ticket.ok()) return ShardError(k, ticket.status());
  }
  // LOAD acks with post-load totals, so make the rows visible first.
  HERMES_RETURN_NOT_OK(Flush());
  HERMES_ASSIGN_OR_RETURN(std::shared_ptr<const traj::TrajectoryStore> snap,
                          GatherSnapshot(canonical));
  return std::make_pair(snap->NumTrajectories(), snap->NumPoints());
}

Status Coordinator::Flush() {
  for (size_t k = 0; k < shards_.size(); ++k) {
    Status st = shards_[k]->Flush();
    if (!st.ok()) return ShardError(k, st);
  }
  return Status::OK();
}

CoordinatorStats Coordinator::Stats() const {
  CoordinatorStats cs;
  cs.per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    cs.per_shard.push_back(shard->Stats());
    service::AccumulateServiceStats(cs.per_shard.back(), &cs.total);
  }
  return cs;
}

// ---------------------------------------------------------------------------
// Merged snapshots (the determinism keystone — see the class comment)
// ---------------------------------------------------------------------------

StatusOr<std::vector<std::shared_ptr<const traj::TrajectoryStore>>>
Coordinator::ShardSnapshots(const std::string& canonical) const {
  std::vector<std::shared_ptr<const traj::TrajectoryStore>> snaps;
  snaps.reserve(shards_.size());
  for (const auto& shard : shards_) {
    // Errors pass through unprefixed: "no MOD named X" must read the
    // same sharded and unsharded (the catalogs move in lockstep, so a
    // miss is never specific to one shard).
    HERMES_ASSIGN_OR_RETURN(auto snap, shard->SnapshotMod(canonical));
    snaps.push_back(std::move(snap));
  }
  return snaps;
}

std::shared_ptr<Coordinator::MergedMod> Coordinator::FindOrCreateMerged(
    const std::string& canonical) {
  common::MutexLock lock(&merged_mu_);
  auto it = merged_.find(canonical);
  if (it == merged_.end()) {
    it = merged_.emplace(canonical, std::make_shared<MergedMod>()).first;
  }
  return it->second;
}

Status Coordinator::RebuildMerged(
    MergedMod* mm,
    std::vector<std::shared_ptr<const traj::TrajectoryStore>> snaps) {
  // Canonical order: ascending object id, stable within an object. An
  // object lives entirely on one shard (the partitioner is a pure
  // function of its id), so the stable sort preserves each object's
  // shard-local — i.e. ingest — order, and the merge is a pure function
  // of the data, not of the shard count.
  struct Entry {
    traj::ObjectId object;
    size_t shard;
    traj::TrajectoryId idx;
  };
  std::vector<Entry> entries;
  for (size_t k = 0; k < snaps.size(); ++k) {
    for (traj::TrajectoryId i = 0; i < snaps[k]->NumTrajectories(); ++i) {
      entries.push_back({snaps[k]->Get(i).object_id(), k, i});
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.object < b.object;
                   });
  traj::TrajectoryStore merged;
  for (const Entry& e : entries) {
    StatusOr<traj::TrajectoryId> added =
        merged.Add(snaps[e.shard]->Get(e.idx));
    if (!added.ok()) return added.status();
  }
  mm->merged =
      std::make_shared<const traj::TrajectoryStore>(std::move(merged));
  mm->sources = std::move(snaps);
  // The old tree indexed the old merge; drop it so QUT rebuilds.
  mm->tree.reset();
  mm->tree_params.clear();
  mm->tree_store.reset();
  return Status::OK();
}

StatusOr<std::shared_ptr<const traj::TrajectoryStore>>
Coordinator::GatherSnapshot(const std::string& name) {
  const std::string canonical = sql::CanonicalModName(name);
  HERMES_ASSIGN_OR_RETURN(auto snaps, ShardSnapshots(canonical));
  std::shared_ptr<MergedMod> mm = FindOrCreateMerged(canonical);
  {
    // Fast path: every shard still publishes the snapshot the cache was
    // merged from (pointer identity; `sources` holds them shared, so a
    // pointer can never be recycled while we compare against it).
    common::ReaderMutexLock rlock(&mm->mu);
    if (mm->sources == snaps) return mm->merged;
  }
  common::WriterMutexLock wlock(&mm->mu);
  if (mm->sources != snaps) {
    HERMES_RETURN_NOT_OK(RebuildMerged(mm.get(), std::move(snaps)));
  }
  return mm->merged;
}

// ---------------------------------------------------------------------------
// QUT over the merged tree
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<sql::RowCursor>> Coordinator::QutQuery(
    const std::string& name, double wi, double we,
    const std::vector<double>& tree_params, exec::ExecStats* session_stats) {
  if (tree_params.size() != 5) {
    return Status::InvalidArgument(
        "QUT tree params must be (tau, delta, t, d, gamma), got " +
        std::to_string(tree_params.size()) + " value(s)");
  }
  // Refreshes the merged cache as a side effect, so the tree-freshness
  // check below compares against the *current* merge.
  HERMES_ASSIGN_OR_RETURN(std::shared_ptr<const traj::TrajectoryStore> snap,
                          GatherSnapshot(name));
  std::shared_ptr<MergedMod> mm =
      FindOrCreateMerged(sql::CanonicalModName(name));
  {
    common::ReaderMutexLock rlock(&mm->mu);
    if (mm->tree != nullptr && mm->tree_params == tree_params &&
        mm->tree_store == mm->merged) {
      return sql::QutQuery(mm->tree.get(), wi, we, session_stats);
    }
  }
  common::WriterMutexLock wlock(&mm->mu);
  (void)snap;  // Pinned so the gathered merge outlives the re-check above.
  if (mm->tree == nullptr || mm->tree_params != tree_params ||
      mm->tree_store != mm->merged) {
    // Unlike the per-shard trees there is no incremental catch-up here:
    // a changed merge can interleave *earlier* object ids, so the tree
    // is rebuilt from the merged snapshot wholesale.
    const core::ReTraTreeParams params = sql::MakeQutTreeParams(tree_params);
    const std::string dir = config_.data_dir + "/coord_" +
                            sql::CanonicalModName(name) + "_tree_" +
                            std::to_string(mm->tree_seq++);
    mm->tree.reset();
    mm->tree_params.clear();
    mm->tree_store.reset();
    HERMES_ASSIGN_OR_RETURN(
        mm->tree, core::ReTraTree::Open(env_, dir, params, exec_.get()));
    mm->tree->SetHotIndexBudget(
        static_cast<size_t>(config_.session_defaults.hot_index_budget));
    Status st = mm->tree->InsertBatch(*mm->merged, exec_.get());
    if (!st.ok()) {
      mm->tree.reset();
      return st;
    }
    mm->tree_params = tree_params;
    mm->tree_store = mm->merged;
  }
  return sql::QutQuery(mm->tree.get(), wi, we, session_stats);
}

// ---------------------------------------------------------------------------
// CoordinatorSession: the statement plane
// ---------------------------------------------------------------------------

namespace {

/// One client's statement session against the coordinator: its own
/// settings / exec context / stats (mirroring `service::ClientSession`),
/// plus one `StatementExecutor` per shard — the *only* channel the
/// scatter, route, and broadcast paths use to reach a shard, so swapping
/// an in-process shard session for a remote `net::Client` executor
/// changes nothing above this line.
class CoordinatorSession final : public sql::PreparedStatementMapExecutor {
 public:
  explicit CoordinatorSession(Coordinator* coord) : coord_(coord) {
    for (size_t k = 0; k < coord_->num_shards(); ++k) {
      shards_.push_back(
          service::MakeStatementExecutor(coord_->shard(k)->Connect()));
    }
    (void)sql::RegisterHermesSettings(
        &settings_, coord_->config().session_defaults, [this](size_t n) {
          if (n != threads_) {
            threads_ = n;
            sql::SwapExecContext(n, &exec_, &session_stats_);
          }
          return Status::OK();
        });
    threads_ =
        static_cast<size_t>(coord_->config().session_defaults.threads);
    if (threads_ > 1) exec_ = std::make_unique<exec::ExecContext>(threads_);
  }

  StatusOr<sql::Table> Execute(const std::string& sql) override {
    HERMES_ASSIGN_OR_RETURN(std::unique_ptr<sql::RowCursor> cursor,
                            ExecuteCursor(sql));
    return cursor->ToTable();
  }

  StatusOr<std::unique_ptr<sql::RowCursor>> ExecuteCursor(
      const std::string& sql) override {
    HERMES_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
    if (stmt.num_params > 0) {
      return Status::InvalidArgument(
          "statement has $N placeholders; use Prepare and Bind");
    }
    return ExecuteStatement(stmt, {}, sql);
  }

 protected:
  StatusOr<sql::PreparedStatement> PrepareStatement(
      const std::string& sql) override {
    HERMES_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
    // The runner keeps the statement *text*: scatter paths re-prepare it
    // on each shard and bind there, so `$N` values round-trip typed
    // (never through string formatting).
    return sql::PreparedStatement(
        std::move(stmt),
        [this, sql](const sql::Statement& s,
                    const std::vector<sql::Value>& b) {
          return ExecuteStatement(s, b, sql);
        });
  }

 private:
  using ShardCall = std::function<StatusOr<sql::Table>(size_t)>;

  /// Runs `call(k)` for every listed shard concurrently (shard 0's slot
  /// inline, the rest on threads) and gathers results in *shard order* —
  /// arrival order never leaks into result assembly.
  std::vector<StatusOr<sql::Table>> FanOut(const std::vector<size_t>& ks,
                                           const ShardCall& call) {
    std::vector<StatusOr<sql::Table>> results(
        ks.size(), StatusOr<sql::Table>(Status::Internal("shard not run")));
    std::vector<std::thread> threads;
    threads.reserve(ks.size() > 0 ? ks.size() - 1 : 0);
    for (size_t i = 1; i < ks.size(); ++i) {
      threads.emplace_back(
          [&, i] { results[i] = call(ks[i]); });
    }
    if (!ks.empty()) results[0] = call(ks[0]);
    for (auto& t : threads) t.join();
    return results;
  }

  /// Executes `text` on shard `k` through its statement executor; with
  /// binds it takes the PREPARE / BIND+EXECUTE path (typed values on the
  /// wire, exact double round-trip).
  StatusOr<sql::Table> ExecOnShard(size_t k, const std::string& text,
                                   const std::vector<sql::Value>& binds) {
    sql::StatementExecutor* ex = shards_[k].get();
    if (binds.empty()) return ex->Execute(text);
    HERMES_ASSIGN_OR_RETURN(sql::PreparedHandle handle, ex->Prepare(text));
    StatusOr<sql::Table> result = ex->BindExecute(handle.id, binds);
    (void)ex->ClosePrepared(handle.id);
    return result;
  }

  /// Broadcasts one statement to every shard; first (lowest-index)
  /// error wins, else shard 0's table — identical on all shards for the
  /// DDL / FLUSH / CHECKPOINT statements that take this path.
  StatusOr<std::unique_ptr<sql::RowCursor>> Broadcast(
      const std::string& text, const std::vector<sql::Value>& binds) {
    std::vector<size_t> ks(coord_->num_shards());
    for (size_t k = 0; k < ks.size(); ++k) ks[k] = k;
    std::vector<StatusOr<sql::Table>> results = FanOut(
        ks, [&](size_t k) { return ExecOnShard(k, text, binds); });
    for (auto& r : results) {
      if (!r.ok()) return r.status();
    }
    return sql::MakeTableCursor(std::move(*results[0]));
  }

  StatusOr<std::unique_ptr<sql::RowCursor>> ExecuteStatement(
      const sql::Statement& stmt, const std::vector<sql::Value>& binds,
      const std::string& text) {
    using Kind = sql::Statement::Kind;
    switch (stmt.kind) {
      // DDL and barriers broadcast: every shard's catalog moves in
      // lockstep, which is what lets every other path assume a MOD
      // exists on all shards or none.
      case Kind::kCreateMod:
      case Kind::kDropMod:
      case Kind::kFlush:
      case Kind::kCheckpoint:
        return Broadcast(text, binds);
      case Kind::kLoadMod: {
        HERMES_ASSIGN_OR_RETURN(auto totals,
                                coord_->LoadMod(stmt.mod, stmt.path));
        sql::Table table;
        table.columns = {{"status", sql::ValueType::kString},
                         {"trajectories", sql::ValueType::kInt},
                         {"points", sql::ValueType::kInt}};
        table.rows = {
            {sql::Value::Str("LOAD " + stmt.mod),
             sql::Value::Int(static_cast<int64_t>(totals.first)),
             sql::Value::Int(static_cast<int64_t>(totals.second))}};
        return sql::MakeTableCursor(std::move(table));
      }
      case Kind::kInsert:
        return ExecuteInsert(stmt, binds);
      case Kind::kSet: {
        HERMES_ASSIGN_OR_RETURN(sql::Value v,
                                sql::EvalScalar(stmt.set_value, binds));
        Status st = settings_.Set(stmt.setting, std::move(v));
        if (!st.ok()) {
          return Status(st.code(),
                        st.message() +
                            sql::ErrorLocation(stmt.setting_pos,
                                               stmt.setting));
        }
        HERMES_ASSIGN_OR_RETURN(sql::Value stored,
                                settings_.Get(stmt.setting));
        return sql::MakeTableCursor(sql::AckTable(
            "SET " + stmt.setting + " = " + stored.ToString()));
      }
      case Kind::kShow:
        return ExecuteShow(stmt);
      case Kind::kSelect:
        return ExecuteSelect(stmt, binds, text);
    }
    return Status::Internal("unreachable");
  }

  StatusOr<std::unique_ptr<sql::RowCursor>> ExecuteInsert(
      const sql::Statement& stmt, const std::vector<sql::Value>& binds) {
    // Route each (obj, t, x, y) row to the shard owning its object, then
    // re-issue one INSERT per involved shard through the statement
    // plane: an all-placeholder body bound to the evaluated values, so
    // doubles round-trip exactly. Row order is preserved per shard, and
    // both sides group rows per object in ascending id order
    // (`BuildInsertTrajectories`), so the merge reproduces the
    // unsharded statement's trajectories bit-for-bit.
    const size_t n = coord_->num_shards();
    std::vector<std::string> texts(n);
    std::vector<std::vector<sql::Value>> shard_binds(n);
    for (const auto& row : stmt.rows) {
      HERMES_ASSIGN_OR_RETURN(double obj, sql::EvalNumber(row[0], binds));
      const size_t k = coord_->partitioner().ShardOf(
          static_cast<traj::ObjectId>(obj), n);
      std::string& text = texts[k];
      std::vector<sql::Value>& vals = shard_binds[k];
      text += text.empty() ? "INSERT INTO " + stmt.mod + " VALUES (" : ", (";
      for (int c = 0; c < 4; ++c) {
        HERMES_ASSIGN_OR_RETURN(sql::Value v, sql::EvalScalar(row[c], binds));
        vals.push_back(std::move(v));
        text += "$" + std::to_string(vals.size());
        text += c < 3 ? ", " : ")";
      }
    }
    std::vector<size_t> ks;
    for (size_t k = 0; k < n; ++k) {
      if (!texts[k].empty()) ks.push_back(k);
    }
    std::vector<StatusOr<sql::Table>> results = FanOut(ks, [&](size_t k) {
      return ExecOnShard(k, texts[k] + ";", shard_binds[k]);
    });
    int64_t queued = 0;
    int64_t ticket = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) return ShardError(ks[i], results[i].status());
      // Per-shard ack: (status, trajectories_queued, ticket).
      queued += results[i]->rows[0][1].AsInt();
      ticket = std::max(ticket, results[i]->rows[0][2].AsInt());
    }
    sql::Table table;
    table.columns = {{"status", sql::ValueType::kString},
                     {"trajectories_queued", sql::ValueType::kInt},
                     {"ticket", sql::ValueType::kInt}};
    table.rows = {{sql::Value::Str("QUEUE INSERT " + stmt.mod),
                   sql::Value::Int(queued), sql::Value::Int(ticket)}};
    return sql::MakeTableCursor(std::move(table));
  }

  StatusOr<std::unique_ptr<sql::RowCursor>> ExecuteShow(
      const sql::Statement& stmt) {
    if (stmt.setting == "service.stats") {
      const CoordinatorStats cs = coord_->Stats();
      sql::Table table;
      table.columns = {{"counter", sql::ValueType::kString},
                       {"value", sql::ValueType::kInt}};
      table.rows.push_back(
          {sql::Value::Str("shards"),
           sql::Value::Int(static_cast<int64_t>(coord_->num_shards()))});
      service::AppendServiceStatsRows(cs.total, "", &table);
      for (size_t k = 0; k < cs.per_shard.size(); ++k) {
        service::AppendServiceStatsRows(
            cs.per_shard[k], "shard" + std::to_string(k) + ".", &table);
      }
      return sql::MakeTableCursor(std::move(table));
    }
    if (stmt.setting == "stats") {
      return sql::MakeTableCursor(
          sql::PhaseStatsTable(session_stats_, exec_.get()));
    }
    HERMES_ASSIGN_OR_RETURN(sql::Table table,
                            sql::SettingsShowTable(settings_, stmt));
    return sql::MakeTableCursor(std::move(table));
  }

  StatusOr<std::unique_ptr<sql::RowCursor>> ExecuteSelect(
      const sql::Statement& stmt, const std::vector<sql::Value>& binds,
      const std::string& text) {
    HERMES_ASSIGN_OR_RETURN(std::string mod,
                            sql::ResolveSelectModName(stmt, binds));
    const std::string at =
        sql::ErrorLocation(stmt.function_pos, stmt.function);
    std::vector<double> args;
    args.reserve(stmt.args.size());
    for (const auto& arg : stmt.args) {
      HERMES_ASSIGN_OR_RETURN(double v, sql::EvalNumber(arg, binds));
      args.push_back(v);
    }

    if (stmt.function == "QUT") {
      if (args.size() != 7) {
        return Status::InvalidArgument(
            "QUT(D, Wi, We, tau, delta, t, d, gamma) takes 7 numbers" + at);
      }
      const std::vector<double> tree_params(args.begin() + 2, args.end());
      return coord_->QutQuery(mod, args[0], args[1], tree_params,
                              &session_stats_);
    }
    // RANGE and STATS decompose per shard: scatter–gather.
    if (stmt.function == "RANGE") return ScatterRange(text, binds);
    if (stmt.function == "STATS") return ScatterStats(text, binds);

    // Clustering analytics (S2T, S2T_MEMBERS, TRACLUS, TOPTICS,
    // CONVOYS) are global — a cluster may span shards — so they
    // evaluate on the merged snapshot, which is bit-identical for any
    // shard count.
    HERMES_ASSIGN_OR_RETURN(std::shared_ptr<const traj::TrajectoryStore> snap,
                            coord_->GatherSnapshot(mod));
    sql::QueryEnv env;
    env.store = std::move(snap);
    env.exec = exec_.get();
    env.session_stats = &session_stats_;
    env.default_sigma = settings_.Get("hermes.sigma")->AsDouble();
    env.default_epsilon = settings_.Get("hermes.epsilon")->AsDouble();
    env.use_index = settings_.Get("hermes.use_index")->AsInt() != 0;
    return sql::EvalSelectFunction(stmt.function, args, env, at);
  }

  /// Scatters the statement to every shard and merges row-wise: shard
  /// tables concatenate in shard order, then a stable sort on the
  /// object-id key (column 0) restores the canonical order — the same
  /// order the merged snapshot would produce, never arrival order.
  StatusOr<std::unique_ptr<sql::RowCursor>> ScatterRange(
      const std::string& text, const std::vector<sql::Value>& binds) {
    HERMES_ASSIGN_OR_RETURN(std::vector<sql::Table> tables,
                            Scatter(text, binds));
    sql::Table merged = std::move(tables[0]);
    for (size_t k = 1; k < tables.size(); ++k) {
      for (auto& row : tables[k].rows) merged.rows.push_back(std::move(row));
    }
    std::stable_sort(merged.rows.begin(), merged.rows.end(),
                     [](const std::vector<sql::Value>& a,
                        const std::vector<sql::Value>& b) {
                       return a[0].AsInt() < b[0].AsInt();
                     });
    return sql::MakeTableCursor(std::move(merged));
  }

  /// Scatters STATS and folds the per-shard aggregates exactly: counts
  /// sum, domains min/max. Empty shards are skipped — their (0, 0)
  /// domain sentinels would otherwise poison the min/max.
  StatusOr<std::unique_ptr<sql::RowCursor>> ScatterStats(
      const std::string& text, const std::vector<sql::Value>& binds) {
    HERMES_ASSIGN_OR_RETURN(std::vector<sql::Table> tables,
                            Scatter(text, binds));
    // Columns: trajectories, points, segments, t_min, t_max, x_min,
    // x_max, y_min, y_max.
    sql::Table merged = tables[0];
    std::vector<sql::Value>& total = merged.rows[0];
    bool seeded = total[0].AsInt() > 0;
    for (size_t k = 1; k < tables.size(); ++k) {
      const std::vector<sql::Value>& row = tables[k].rows[0];
      if (row[0].AsInt() == 0) continue;
      if (!seeded) {
        total = row;
        seeded = true;
        continue;
      }
      for (int c = 0; c < 3; ++c) {
        total[c] = sql::Value::Int(total[c].AsInt() + row[c].AsInt());
      }
      for (int c : {3, 5, 7}) {  // t_min, x_min, y_min
        total[c] = sql::Value::Double(
            std::min(total[c].AsDouble(), row[c].AsDouble()));
      }
      for (int c : {4, 6, 8}) {  // t_max, x_max, y_max
        total[c] = sql::Value::Double(
            std::max(total[c].AsDouble(), row[c].AsDouble()));
      }
    }
    return sql::MakeTableCursor(std::move(merged));
  }

  /// Fans one statement out to every shard; fails on the first
  /// (lowest-index) shard error, unprefixed — scattered statements fail
  /// identically on every shard (lockstep catalogs, same validation).
  StatusOr<std::vector<sql::Table>> Scatter(
      const std::string& text, const std::vector<sql::Value>& binds) {
    std::vector<size_t> ks(coord_->num_shards());
    for (size_t k = 0; k < ks.size(); ++k) ks[k] = k;
    std::vector<StatusOr<sql::Table>> results = FanOut(
        ks, [&](size_t k) { return ExecOnShard(k, text, binds); });
    std::vector<sql::Table> tables;
    tables.reserve(results.size());
    for (auto& r : results) {
      if (!r.ok()) return r.status();
      tables.push_back(std::move(*r));
    }
    return tables;
  }

  Coordinator* coord_;
  std::vector<std::unique_ptr<sql::StatementExecutor>> shards_;
  sql::Settings settings_;
  exec::ExecStats session_stats_;
  size_t threads_ = 1;
  std::unique_ptr<exec::ExecContext> exec_;
};

}  // namespace

std::unique_ptr<sql::StatementExecutor> Coordinator::Connect() {
  return std::make_unique<CoordinatorSession>(this);
}

}  // namespace hermes::shard
