#include "sql/parser.h"

#include <array>

namespace hermes::sql {

namespace {

/// Cursor over the token stream with convenience expectations.
class Cursor {
 public:
  explicit Cursor(const std::vector<Token>& tokens) : tokens_(tokens) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Status ExpectKeyword(const std::string& kw) {
    const Token& t = Next();
    if (t.kind != TokenKind::kIdentifier || t.text != kw) {
      return Status::InvalidArgument("expected " + kw + " near offset " +
                                     std::to_string(t.position));
    }
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdentifier() {
    const Token& t = Next();
    if (t.kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected identifier near offset " +
                                     std::to_string(t.position));
    }
    return t.text;
  }

  StatusOr<double> ExpectNumber() {
    const Token& t = Next();
    if (t.kind != TokenKind::kNumber) {
      return Status::InvalidArgument("expected number near offset " +
                                     std::to_string(t.position));
    }
    return t.number;
  }

  Status Expect(TokenKind kind, const char* what) {
    const Token& t = Next();
    if (t.kind != kind) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     " near offset " +
                                     std::to_string(t.position));
    }
    return Status::OK();
  }

  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

 private:
  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

StatusOr<Statement> ParseOne(Cursor* cur) {
  Statement stmt;
  HERMES_ASSIGN_OR_RETURN(std::string head, cur->ExpectIdentifier());

  if (head == "CREATE") {
    HERMES_RETURN_NOT_OK(cur->ExpectKeyword("MOD"));
    stmt.kind = Statement::Kind::kCreateMod;
    HERMES_ASSIGN_OR_RETURN(stmt.mod, cur->ExpectIdentifier());
  } else if (head == "DROP") {
    HERMES_RETURN_NOT_OK(cur->ExpectKeyword("MOD"));
    stmt.kind = Statement::Kind::kDropMod;
    HERMES_ASSIGN_OR_RETURN(stmt.mod, cur->ExpectIdentifier());
  } else if (head == "LOAD") {
    HERMES_RETURN_NOT_OK(cur->ExpectKeyword("MOD"));
    stmt.kind = Statement::Kind::kLoadMod;
    HERMES_ASSIGN_OR_RETURN(stmt.mod, cur->ExpectIdentifier());
    HERMES_RETURN_NOT_OK(cur->ExpectKeyword("FROM"));
    const Token& t = cur->Next();
    if (t.kind != TokenKind::kString) {
      return Status::InvalidArgument("expected 'path' near offset " +
                                     std::to_string(t.position));
    }
    stmt.path = t.text;
  } else if (head == "INSERT") {
    HERMES_RETURN_NOT_OK(cur->ExpectKeyword("INTO"));
    stmt.kind = Statement::Kind::kInsert;
    HERMES_ASSIGN_OR_RETURN(stmt.mod, cur->ExpectIdentifier());
    HERMES_RETURN_NOT_OK(cur->ExpectKeyword("VALUES"));
    do {
      HERMES_RETURN_NOT_OK(cur->Expect(TokenKind::kLParen, "("));
      std::array<double, 4> row{};
      for (int k = 0; k < 4; ++k) {
        HERMES_ASSIGN_OR_RETURN(row[k], cur->ExpectNumber());
        if (k < 3) HERMES_RETURN_NOT_OK(cur->Expect(TokenKind::kComma, ","));
      }
      HERMES_RETURN_NOT_OK(cur->Expect(TokenKind::kRParen, ")"));
      stmt.rows.push_back(row);
    } while (cur->Accept(TokenKind::kComma));
  } else if (head == "SET") {
    // SET hermes.threads = N (PostgreSQL-style run-time setting).
    stmt.kind = Statement::Kind::kSet;
    HERMES_ASSIGN_OR_RETURN(stmt.setting, cur->ExpectIdentifier());
    while (cur->Accept(TokenKind::kDot)) {
      HERMES_ASSIGN_OR_RETURN(std::string part, cur->ExpectIdentifier());
      stmt.setting += "." + part;
    }
    HERMES_RETURN_NOT_OK(cur->Expect(TokenKind::kEquals, "="));
    HERMES_ASSIGN_OR_RETURN(stmt.set_value, cur->ExpectNumber());
  } else if (head == "SELECT") {
    stmt.kind = Statement::Kind::kSelect;
    HERMES_ASSIGN_OR_RETURN(stmt.function, cur->ExpectIdentifier());
    HERMES_RETURN_NOT_OK(cur->Expect(TokenKind::kLParen, "("));
    HERMES_ASSIGN_OR_RETURN(stmt.mod, cur->ExpectIdentifier());
    while (cur->Accept(TokenKind::kComma)) {
      HERMES_ASSIGN_OR_RETURN(double v, cur->ExpectNumber());
      stmt.args.push_back(v);
    }
    HERMES_RETURN_NOT_OK(cur->Expect(TokenKind::kRParen, ")"));
  } else {
    return Status::InvalidArgument("unknown statement " + head);
  }

  cur->Accept(TokenKind::kSemicolon);
  return stmt;
}

}  // namespace

StatusOr<Statement> ParseStatement(const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Cursor cur(tokens);
  HERMES_ASSIGN_OR_RETURN(Statement stmt, ParseOne(&cur));
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing input after statement");
  }
  return stmt;
}

StatusOr<std::vector<Statement>> ParseScript(const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Cursor cur(tokens);
  std::vector<Statement> out;
  while (!cur.AtEnd()) {
    HERMES_ASSIGN_OR_RETURN(Statement stmt, ParseOne(&cur));
    out.push_back(std::move(stmt));
  }
  return out;
}

}  // namespace hermes::sql
