#include "sql/parser.h"

#include <array>
#include <cmath>

#include "sql/settings.h"

namespace hermes::sql {

namespace {

/// The shared location suffix, anchored to a token ("near end of input"
/// for the kEnd sentinel).
std::string At(const Token& t) {
  return ErrorLocation(t.position, t.kind == TokenKind::kEnd ? "" : t.text);
}

/// Cursor over the token stream with convenience expectations.
class TokenCursor {
 public:
  explicit TokenCursor(const std::vector<Token>& tokens) : tokens_(tokens) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Status ExpectKeyword(const std::string& kw) {
    const Token& t = Next();
    if (t.kind != TokenKind::kIdentifier || t.text != kw) {
      return Status::InvalidArgument("expected " + kw + At(t));
    }
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdentifier() {
    const Token& t = Next();
    if (t.kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected identifier" + At(t));
    }
    return t.text;
  }

  Status Expect(TokenKind kind, const char* what) {
    const Token& t = Next();
    if (t.kind != kind) {
      return Status::InvalidArgument(std::string("expected ") + what + At(t));
    }
    return Status::OK();
  }

  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

 private:
  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

Value NumberValue(const Token& t) {
  // Integer spellings beyond int64 range fall back to double: the cast
  // would be UB, and the double carries the magnitude faithfully anyway.
  if (t.is_integer && std::abs(t.number) <= 9.0e18) {
    return Value::Int(static_cast<int64_t>(t.number));
  }
  return Value::Double(t.number);
}

/// A number literal or a `$N` placeholder.
StatusOr<ScalarExpr> ExpectScalar(TokenCursor* cur, Statement* stmt) {
  const Token& t = cur->Next();
  if (t.kind == TokenKind::kNumber) {
    return ScalarExpr::Literal(NumberValue(t), t);
  }
  if (t.kind == TokenKind::kParam) {
    stmt->num_params = std::max(stmt->num_params, t.param_index);
    return ScalarExpr::Placeholder(t);
  }
  return Status::InvalidArgument("expected number or $N placeholder" + At(t));
}

/// A dotted setting name ("hermes.threads"), canonical lower-case.
StatusOr<std::string> ExpectSettingName(TokenCursor* cur, size_t* pos) {
  const Token& first = cur->Peek();
  HERMES_ASSIGN_OR_RETURN(std::string name, cur->ExpectIdentifier());
  *pos = first.position;
  while (cur->Accept(TokenKind::kDot)) {
    HERMES_ASSIGN_OR_RETURN(std::string part, cur->ExpectIdentifier());
    name += "." + part;
  }
  return Settings::Canonical(name);
}

StatusOr<Statement> ParseOne(TokenCursor* cur) {
  Statement stmt;
  const Token& head_tok = cur->Peek();
  HERMES_ASSIGN_OR_RETURN(std::string head, cur->ExpectIdentifier());

  if (head == "CREATE") {
    HERMES_RETURN_NOT_OK(cur->ExpectKeyword("MOD"));
    stmt.kind = Statement::Kind::kCreateMod;
    HERMES_ASSIGN_OR_RETURN(stmt.mod, cur->ExpectIdentifier());
  } else if (head == "DROP") {
    HERMES_RETURN_NOT_OK(cur->ExpectKeyword("MOD"));
    stmt.kind = Statement::Kind::kDropMod;
    HERMES_ASSIGN_OR_RETURN(stmt.mod, cur->ExpectIdentifier());
  } else if (head == "LOAD") {
    HERMES_RETURN_NOT_OK(cur->ExpectKeyword("MOD"));
    stmt.kind = Statement::Kind::kLoadMod;
    HERMES_ASSIGN_OR_RETURN(stmt.mod, cur->ExpectIdentifier());
    HERMES_RETURN_NOT_OK(cur->ExpectKeyword("FROM"));
    const Token& t = cur->Next();
    if (t.kind != TokenKind::kString) {
      return Status::InvalidArgument("expected 'path'" + At(t));
    }
    stmt.path = t.text;
  } else if (head == "INSERT") {
    HERMES_RETURN_NOT_OK(cur->ExpectKeyword("INTO"));
    stmt.kind = Statement::Kind::kInsert;
    HERMES_ASSIGN_OR_RETURN(stmt.mod, cur->ExpectIdentifier());
    HERMES_RETURN_NOT_OK(cur->ExpectKeyword("VALUES"));
    do {
      HERMES_RETURN_NOT_OK(cur->Expect(TokenKind::kLParen, "("));
      std::array<ScalarExpr, 4> row{};
      for (int k = 0; k < 4; ++k) {
        HERMES_ASSIGN_OR_RETURN(row[k], ExpectScalar(cur, &stmt));
        if (k < 3) HERMES_RETURN_NOT_OK(cur->Expect(TokenKind::kComma, ","));
      }
      HERMES_RETURN_NOT_OK(cur->Expect(TokenKind::kRParen, ")"));
      stmt.rows.push_back(std::move(row));
    } while (cur->Accept(TokenKind::kComma));
  } else if (head == "SET") {
    // SET hermes.<setting> = value (PostgreSQL-style run-time setting).
    stmt.kind = Statement::Kind::kSet;
    HERMES_ASSIGN_OR_RETURN(stmt.setting,
                            ExpectSettingName(cur, &stmt.setting_pos));
    HERMES_RETURN_NOT_OK(cur->Expect(TokenKind::kEquals, "="));
    const Token& v = cur->Peek();
    if (v.kind == TokenKind::kNumber || v.kind == TokenKind::kParam) {
      HERMES_ASSIGN_OR_RETURN(stmt.set_value, ExpectScalar(cur, &stmt));
    } else if (v.kind == TokenKind::kString) {
      cur->Next();
      stmt.set_value = ScalarExpr::Literal(Value::Str(v.text), v);
    } else if (v.kind == TokenKind::kIdentifier) {
      // Boolean spellings a la postgresql.conf: on/off/true/false.
      cur->Next();
      if (v.text == "ON" || v.text == "TRUE") {
        stmt.set_value = ScalarExpr::Literal(Value::Int(1), v);
      } else if (v.text == "OFF" || v.text == "FALSE") {
        stmt.set_value = ScalarExpr::Literal(Value::Int(0), v);
      } else {
        stmt.set_value =
            ScalarExpr::Literal(Value::Str(Settings::Canonical(v.text)), v);
      }
    } else {
      return Status::InvalidArgument("expected setting value" + At(v));
    }
  } else if (head == "SHOW") {
    // SHOW hermes.<setting> | SHOW ALL | SHOW STATS | SHOW SERVICE STATS.
    stmt.kind = Statement::Kind::kShow;
    HERMES_ASSIGN_OR_RETURN(stmt.setting,
                            ExpectSettingName(cur, &stmt.setting_pos));
    if (stmt.setting == "service" &&
        cur->Peek().kind == TokenKind::kIdentifier) {
      // The two-word service pseudo-target, canonicalized with a dot so
      // it cannot collide with a registered setting name.
      HERMES_RETURN_NOT_OK(cur->ExpectKeyword("STATS"));
      stmt.setting = "service.stats";
    }
  } else if (head == "FLUSH") {
    // FLUSH: wait until every previously queued INSERT is applied and
    // published (a no-op acknowledgment for synchronous-ingest sessions).
    stmt.kind = Statement::Kind::kFlush;
  } else if (head == "CHECKPOINT") {
    // CHECKPOINT: persist the catalog and truncate the covered WAL
    // prefix (service sessions on a WAL-enabled server only).
    stmt.kind = Statement::Kind::kCheckpoint;
  } else if (head == "SELECT") {
    stmt.kind = Statement::Kind::kSelect;
    const Token& fn = cur->Peek();
    HERMES_ASSIGN_OR_RETURN(stmt.function, cur->ExpectIdentifier());
    stmt.function_pos = fn.position;
    HERMES_RETURN_NOT_OK(cur->Expect(TokenKind::kLParen, "("));
    const Token& m = cur->Peek();
    stmt.mod_pos = m.position;
    if (m.kind == TokenKind::kParam) {
      cur->Next();
      stmt.mod_param = m.param_index;
      stmt.num_params = std::max(stmt.num_params, m.param_index);
    } else {
      HERMES_ASSIGN_OR_RETURN(stmt.mod, cur->ExpectIdentifier());
    }
    while (cur->Accept(TokenKind::kComma)) {
      HERMES_ASSIGN_OR_RETURN(ScalarExpr arg, ExpectScalar(cur, &stmt));
      stmt.args.push_back(std::move(arg));
    }
    HERMES_RETURN_NOT_OK(cur->Expect(TokenKind::kRParen, ")"));
  } else {
    return Status::InvalidArgument("unknown statement " + head + At(head_tok));
  }

  cur->Accept(TokenKind::kSemicolon);
  return stmt;
}

}  // namespace

StatusOr<Statement> ParseStatement(const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  TokenCursor cur(tokens);
  while (cur.Accept(TokenKind::kSemicolon)) {
  }
  HERMES_ASSIGN_OR_RETURN(Statement stmt, ParseOne(&cur));
  while (cur.Accept(TokenKind::kSemicolon)) {
  }
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing input after statement" +
                                   At(cur.Peek()));
  }
  return stmt;
}

StatusOr<std::vector<Statement>> ParseScript(const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  TokenCursor cur(tokens);
  std::vector<Statement> out;
  while (!cur.AtEnd()) {
    // Empty statements (";;", trailing ';') are skipped, per psql.
    if (cur.Accept(TokenKind::kSemicolon)) continue;
    HERMES_ASSIGN_OR_RETURN(Statement stmt, ParseOne(&cur));
    out.push_back(std::move(stmt));
  }
  return out;
}

}  // namespace hermes::sql
