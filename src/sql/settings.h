#ifndef HERMES_SQL_SETTINGS_H_
#define HERMES_SQL_SETTINGS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "sql/value.h"

namespace hermes::sql {

/// \brief PostgreSQL-GUC-style registry of run-time settings.
///
/// Each setting is registered once with a canonical (lower-case) name, a
/// typed default, a one-line description, and optional hooks:
///
///  - `validate` runs on every `Set` after type coercion and rejects
///    out-of-domain values with `InvalidArgument` *before* any state
///    changes (the boundary check the old hard-coded `threads_` lacked);
///  - `on_change` runs after the value is stored, letting the owner react
///    (e.g. the session swapping its `ExecContext`). If the hook fails the
///    previous value is restored and the error propagated.
///
/// `Set` coerces numerics to the registered type: an integral double is
/// accepted for an int setting, an int is widened for a double setting;
/// anything else (non-integral double for an int, a string for a numeric)
/// is an `InvalidArgument`. New knobs therefore need *no* parser or
/// executor surgery — `SET hermes.<name> = v` and `SHOW` are generic.
class Settings {
 public:
  using Validator = std::function<Status(const Value&)>;
  using OnChange = std::function<Status(const Value&)>;

  struct Setting {
    std::string name;  ///< Canonical lower-case, e.g. "hermes.threads".
    std::string description;
    Value value;
    Value default_value;
    Validator validate;   ///< Optional domain check.
    OnChange on_change;   ///< Optional owner reaction.

    ValueType type() const { return default_value.type(); }
  };

  /// Registers a setting at its default. Fails with `AlreadyExists` on a
  /// duplicate name and `InvalidArgument` on a null default.
  Status Register(std::string name, Value default_value,
                  std::string description, Validator validate = nullptr,
                  OnChange on_change = nullptr);

  /// Coerces, validates, stores, then fires `on_change`. Name lookup is
  /// case-insensitive; unknown names are `NotSupported` (so callers can
  /// distinguish "no such knob" from "bad value").
  Status Set(const std::string& name, Value v);

  /// Current value, or `NotSupported` for unknown names.
  StatusOr<Value> Get(const std::string& name) const;

  /// Registered setting by case-insensitive name, or nullptr.
  const Setting* Find(const std::string& name) const;

  /// All registered settings in name order.
  std::vector<const Setting*> All() const;

  /// Lower-cases a setting name (the canonical registry key).
  static std::string Canonical(const std::string& name);

 private:
  std::map<std::string, Setting> settings_;
};

/// \brief Defaults for the standard `hermes.*` knobs. The service server
/// keeps one of these and hands it to every new client session, so fresh
/// sessions start from the server's configuration while staying free to
/// diverge via their own `SET`s.
struct HermesSettingDefaults {
  int64_t threads = 1;
  double sigma = 100.0;
  double epsilon = 200.0;
  int64_t use_index = 1;
  /// Bytes of in-memory hot-tier index snapshots a ReTraTree may keep
  /// (0 disables the hot tier); see core::kDefaultHotIndexBudget.
  int64_t hot_index_budget = 64 * 1024 * 1024;
};

/// \brief Registers the standard `hermes.*` knobs (threads / sigma /
/// epsilon / use_index) into `settings` with the shared validators.
///
/// Every owner — the embedded `sql::Session` and each
/// `service::ClientSession` — registers into its *own* `Settings`
/// instance: settings are session-scoped state, never process-global, so
/// two sessions with different `hermes.threads` or bandwidths cannot
/// interfere. `on_threads_change` (optional) fires after `hermes.threads`
/// passes validation, letting the owner swap its `ExecContext`.
Status RegisterHermesSettings(Settings* settings,
                              const HermesSettingDefaults& defaults,
                              std::function<Status(size_t)> on_threads_change);

}  // namespace hermes::sql

#endif  // HERMES_SQL_SETTINGS_H_
