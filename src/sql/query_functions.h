#ifndef HERMES_SQL_QUERY_FUNCTIONS_H_
#define HERMES_SQL_QUERY_FUNCTIONS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/retratree.h"
#include "exec/exec_context.h"
#include "sql/cursor.h"
#include "sql/parser.h"
#include "sql/settings.h"
#include "sql/value.h"
#include "traj/trajectory_store.h"

namespace hermes::sql {

/// \brief Everything a SELECT function evaluation needs, independent of
/// which frontend issued it — the embedded `sql::Session` or a
/// `service::ClientSession`.
///
/// `store` is shared ownership: streaming cursors (`RANGE`,
/// `S2T_MEMBERS`) capture it, so a service snapshot — and the arena epoch
/// it pins — stays alive for the whole life of the cursor even while the
/// ingest worker keeps publishing newer epochs.
struct QueryEnv {
  std::shared_ptr<const traj::TrajectoryStore> store;
  /// Parallelism for analytic statements; nullptr = sequential.
  exec::ExecContext* exec = nullptr;
  /// Timing archive for sequential runs (`SHOW STATS`); a live `exec`
  /// records its own phases, so this stays untouched then.
  exec::ExecStats* session_stats = nullptr;
  double default_sigma = 100.0;
  double default_epsilon = 200.0;
  bool use_index = true;
};

/// Non-owning `QueryEnv::store` handle for embedders whose store outlives
/// every cursor by contract (the embedded `Session`'s MOD catalog).
std::shared_ptr<const traj::TrajectoryStore> BorrowStore(
    const traj::TrajectoryStore* store);

/// \brief Executes one parsed statement with its bound `$N` values —
/// the seam every frontend (embedded `sql::Session`, service
/// `ClientSession`) exposes so `PreparedStatement` can run against any
/// of them.
using StatementRunner =
    std::function<StatusOr<std::unique_ptr<RowCursor>>(
        const Statement&, const std::vector<Value>&)>;

/// \brief A parsed-once, execute-many statement handle.
///
/// `Prepare` (on either frontend) tokenizes and parses a statement with
/// `$N` placeholders exactly once; `Bind` supplies typed values and
/// `Execute` / `ExecuteCursor` run the cached parse tree through the
/// owning frontend's `StatementRunner` — so maintenance loops, benches,
/// and the wire protocol's BIND+EXECUTE fast path re-executing the same
/// shape pay no per-call parsing. Bindings persist across executions;
/// re-`Bind` to change one. The handle must not outlive the frontend the
/// runner captures.
class PreparedStatement {
 public:
  PreparedStatement(Statement stmt, StatementRunner run);

  /// Binds the 1-based placeholder `$index`. Fails with `InvalidArgument`
  /// when `index` is outside [1, num_params()].
  Status Bind(int index, Value v);

  /// Executes with the current bindings; every placeholder must be bound.
  StatusOr<Table> Execute();

  /// Cursor-returning flavor (see `Session::ExecuteCursor`).
  StatusOr<std::unique_ptr<RowCursor>> ExecuteCursor();

  /// Number of distinct `$N` placeholders (the highest N).
  int num_params() const { return stmt_.num_params; }

 private:
  Statement stmt_;
  StatementRunner run_;
  std::vector<Value> binds_;   ///< Slot i holds the value of `$(i+1)`.
  std::vector<bool> bound_;
};

/// Resolves the MOD a SELECT targets: the statement's literal name, or —
/// when the MOD position was a `$N` placeholder — the canonicalized
/// string it was bound to. Shared by both frontends so a prepared
/// `SELECT RANGE($1, ...)` behaves identically embedded and served.
StatusOr<std::string> ResolveSelectModName(const Statement& stmt,
                                           const std::vector<Value>& binds);

/// Canonical (ASCII upper-case) MOD name — the one catalog key rule the
/// embedded session's map and the service server's catalog both follow.
std::string CanonicalModName(const std::string& name);

/// True when `EvalSelectFunction` implements `function`.
bool IsSelectFunction(const std::string& function);

/// \brief Evaluates one SELECT function — STATS / RANGE / S2T /
/// S2T_MEMBERS / TRACLUS / TOPTICS / CONVOYS — against `env`. `at` is the
/// error-location suffix anchored at the function token. `QUT` is *not*
/// handled here: it needs ReTraTree ownership, which each frontend
/// manages itself (see `QutQuery`).
StatusOr<std::unique_ptr<RowCursor>> EvalSelectFunction(
    const std::string& function, const std::vector<double>& args,
    const QueryEnv& env, const std::string& at);

/// Runs a QUT window query against an already-built tree, recording the
/// `qut_query` wall time into `session_stats` (optional).
StatusOr<std::unique_ptr<RowCursor>> QutQuery(core::ReTraTree* tree,
                                              double wi, double we,
                                              exec::ExecStats* session_stats);

/// Maps the SQL `QUT(D, Wi, We, tau, delta, t, d, gamma)` tail — the 5
/// tree parameters — onto `ReTraTreeParams`, including the
/// sigma = epsilon = d convention for the buffer re-clustering runs.
/// One definition so the embedded session and the service server cannot
/// build differently-parameterized trees for the same statement.
core::ReTraTreeParams MakeQutTreeParams(const std::vector<double>& tree_params);

/// Evaluates the rows of an INSERT statement into one trajectory per
/// object id (grouped in ascending object order, samples in row order),
/// resolving `$N` binds.
StatusOr<std::vector<traj::Trajectory>> BuildInsertTrajectories(
    const Statement& stmt, const std::vector<Value>& binds);

/// Resolves a scalar: the literal itself, or the bound value of `$N`.
StatusOr<Value> EvalScalar(const ScalarExpr& e,
                           const std::vector<Value>& binds);

/// Resolves a scalar that must be numeric, widening ints to double.
StatusOr<double> EvalNumber(const ScalarExpr& e,
                            const std::vector<Value>& binds);

/// Single-column acknowledgment table ("CREATE MOD X", ...).
Table AckTable(std::string status);

/// Cursor over an eagerly-built table.
std::unique_ptr<RowCursor> MakeTableCursor(Table table);

/// `SHOW STATS` table: the session archive merged with the live
/// context's phase timings (when one exists).
Table PhaseStatsTable(const exec::ExecStats& session_stats,
                      const exec::ExecContext* exec);

/// Folds `s` into `total` field-by-field — `SHOW STATS` aggregates the
/// hot-tier counters across every built ReTraTree (one per MOD here, one
/// per shared MOD in the service catalog).
void AccumulateHotTierStats(const core::HotTierStats& s,
                            core::HotTierStats* total);

/// Appends the hot/cold tier counter rows (`qut_hot_probes`,
/// `qut_cold_probes`, `hot_index_bytes`, ...) to a `SHOW STATS`-shaped
/// table: counter name in the phase column, value in the total column.
void AppendHotTierRows(const core::HotTierStats& tier, Table* table);

/// `SHOW hermes.<name>` / `SHOW ALL` table over a registry; unknown
/// names fail with the statement's error location.
StatusOr<Table> SettingsShowTable(const Settings& settings,
                                  const Statement& stmt);

/// The ';'-script loop shared by both frontends: parses, rejects `$N`
/// placeholders, executes each statement via `run`, prefixes errors with
/// `statement k:`, and returns the last statement's table.
StatusOr<Table> RunScript(
    const std::string& sql,
    const std::function<StatusOr<std::unique_ptr<RowCursor>>(
        const Statement&)>& run);

/// The shared `hermes.threads` on-change reaction: folds the retiring
/// context's phase timings into `archive` (so SHOW STATS keeps
/// accumulating) and swaps in a fresh context — nullptr when `n == 1`,
/// since a sequential session needs no pool.
void SwapExecContext(size_t n, std::unique_ptr<exec::ExecContext>* exec,
                     exec::ExecStats* archive);

}  // namespace hermes::sql

#endif  // HERMES_SQL_QUERY_FUNCTIONS_H_
