#include "sql/query_functions.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <map>
#include <utility>

#include "baselines/convoys.h"
#include "baselines/toptics.h"
#include "baselines/traclus.h"
#include "core/qut_clustering.h"
#include "core/s2t_clustering.h"

namespace hermes::sql {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::shared_ptr<const traj::TrajectoryStore> BorrowStore(
    const traj::TrajectoryStore* store) {
  // Aliasing handle: shares no ownership, the embedder guarantees the
  // store outlives every cursor built over it.
  return std::shared_ptr<const traj::TrajectoryStore>(
      std::shared_ptr<const void>(), store);
}

// ---------------------------------------------------------------------------
// PreparedStatement
// ---------------------------------------------------------------------------

PreparedStatement::PreparedStatement(Statement stmt, StatementRunner run)
    : stmt_(std::move(stmt)),
      run_(std::move(run)),
      binds_(static_cast<size_t>(stmt_.num_params)),
      bound_(static_cast<size_t>(stmt_.num_params), false) {}

Status PreparedStatement::Bind(int index, Value v) {
  if (index < 1 || index > stmt_.num_params) {
    return Status::InvalidArgument(
        "bind index $" + std::to_string(index) + " out of range; statement "
        "has " + std::to_string(stmt_.num_params) + " parameter(s)");
  }
  binds_[index - 1] = std::move(v);
  bound_[index - 1] = true;
  return Status::OK();
}

StatusOr<std::unique_ptr<RowCursor>> PreparedStatement::ExecuteCursor() {
  for (size_t i = 0; i < bound_.size(); ++i) {
    if (!bound_[i]) {
      return Status::InvalidArgument("parameter $" + std::to_string(i + 1) +
                                     " not bound");
    }
  }
  return run_(stmt_, binds_);
}

StatusOr<Table> PreparedStatement::Execute() {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<RowCursor> cursor, ExecuteCursor());
  return cursor->ToTable();
}

StatusOr<std::string> ResolveSelectModName(const Statement& stmt,
                                           const std::vector<Value>& binds) {
  if (stmt.mod_param <= 0) return stmt.mod;
  if (stmt.mod_param > static_cast<int>(binds.size())) {
    return Status::InvalidArgument(
        "parameter $" + std::to_string(stmt.mod_param) + " not bound" +
        ErrorLocation(stmt.mod_pos, "$" + std::to_string(stmt.mod_param)));
  }
  const Value& v = binds[stmt.mod_param - 1];
  if (v.type() != ValueType::kString) {
    return Status::InvalidArgument(
        "MOD placeholder $" + std::to_string(stmt.mod_param) +
        " must be bound to a string, got " + ValueTypeName(v.type()) +
        ErrorLocation(stmt.mod_pos, "$" + std::to_string(stmt.mod_param)));
  }
  return CanonicalModName(v.AsString());
}

std::string CanonicalModName(const std::string& name) {
  std::string key = name;
  for (char& c : key) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return key;
}

StatusOr<Value> EvalScalar(const ScalarExpr& e,
                           const std::vector<Value>& binds) {
  if (e.param == 0) return e.value;
  if (e.param > static_cast<int>(binds.size())) {
    return Status::InvalidArgument("parameter $" + std::to_string(e.param) +
                                   " not bound" + ErrorLocation(e.pos, e.text));
  }
  return binds[e.param - 1];
}

StatusOr<double> EvalNumber(const ScalarExpr& e,
                            const std::vector<Value>& binds) {
  HERMES_ASSIGN_OR_RETURN(Value v, EvalScalar(e, binds));
  if (!v.is_numeric()) {
    return Status::InvalidArgument(std::string("expected a number, got ") +
                                   ValueTypeName(v.type()) +
                                   ErrorLocation(e.pos, e.text));
  }
  return v.AsDouble();
}

Table AckTable(std::string status) {
  Table table;
  table.columns = {{"status", ValueType::kString}};
  table.rows = {{Value::Str(std::move(status))}};
  return table;
}

std::unique_ptr<RowCursor> MakeTableCursor(Table table) {
  return std::make_unique<TableCursor>(std::move(table));
}

StatusOr<std::vector<traj::Trajectory>> BuildInsertTrajectories(
    const Statement& stmt, const std::vector<Value>& binds) {
  // Group rows by object id; each group yields one trajectory.
  std::map<uint64_t, traj::Trajectory> builders;
  for (const auto& row : stmt.rows) {
    std::array<double, 4> cell{};
    for (int k = 0; k < 4; ++k) {
      HERMES_ASSIGN_OR_RETURN(cell[k], EvalNumber(row[k], binds));
    }
    const auto obj = static_cast<traj::ObjectId>(cell[0]);
    auto [bit, fresh] = builders.try_emplace(obj, traj::Trajectory(obj));
    HERMES_RETURN_NOT_OK(bit->second.Append({cell[2], cell[3], cell[1]}));
  }
  std::vector<traj::Trajectory> out;
  out.reserve(builders.size());
  for (auto& [obj, t] : builders) out.push_back(std::move(t));
  return out;
}

bool IsSelectFunction(const std::string& function) {
  return function == "STATS" || function == "RANGE" || function == "S2T" ||
         function == "S2T_MEMBERS" || function == "TRACLUS" ||
         function == "TOPTICS" || function == "CONVOYS";
}

StatusOr<std::unique_ptr<RowCursor>> EvalSelectFunction(
    const std::string& function, const std::vector<double>& args,
    const QueryEnv& env, const std::string& at) {
  const traj::TrajectoryStore& store = *env.store;

  if (function == "STATS") {
    const auto [t0, t1] = store.TimeDomain();
    const geom::Mbb3D b = store.Bounds();
    Table table;
    table.columns = {{"trajectories", ValueType::kInt},
                     {"points", ValueType::kInt},
                     {"segments", ValueType::kInt},
                     {"t_min", ValueType::kDouble},
                     {"t_max", ValueType::kDouble},
                     {"x_min", ValueType::kDouble},
                     {"x_max", ValueType::kDouble},
                     {"y_min", ValueType::kDouble},
                     {"y_max", ValueType::kDouble}};
    table.rows = {{Value::Int(static_cast<int64_t>(store.NumTrajectories())),
                   Value::Int(static_cast<int64_t>(store.NumPoints())),
                   Value::Int(static_cast<int64_t>(store.NumSegments())),
                   Value::Double(t0), Value::Double(t1), Value::Double(b.min_x),
                   Value::Double(b.max_x), Value::Double(b.min_y),
                   Value::Double(b.max_y)}};
    return MakeTableCursor(std::move(table));
  }

  if (function == "RANGE") {
    if (args.size() != 2) {
      return Status::InvalidArgument("RANGE(D, Wi, We) takes 2 numbers" + at);
    }
    const double wi = args[0];
    const double we = args[1];
    if (we <= wi) {
      return Status::InvalidArgument("empty window" + at);
    }
    // Streams one row per qualifying trajectory; the slice happens in
    // Next(), so a caller reading k rows slices only ~k trajectories. The
    // generator owns the store handle: a service snapshot stays pinned
    // for the cursor's whole life.
    std::shared_ptr<const traj::TrajectoryStore> snap = env.store;
    size_t idx = 0;
    GeneratorCursor::Generator gen =
        [snap, wi, we, idx](std::vector<Value>* row) mutable
        -> StatusOr<bool> {
      while (idx < snap->NumTrajectories()) {
        const traj::Trajectory& t = snap->Get(idx++);
        const traj::Trajectory sliced = t.Slice(wi, we);
        if (sliced.size() >= 2) {
          *row = {Value::Int(static_cast<int64_t>(t.object_id())),
                  Value::Int(static_cast<int64_t>(sliced.size()))};
          return true;
        }
      }
      return false;
    };
    return std::unique_ptr<RowCursor>(std::make_unique<GeneratorCursor>(
        std::vector<Column>{{"object_id", ValueType::kInt},
                            {"points_in_window", ValueType::kInt}},
        std::move(gen)));
  }

  if (function == "S2T" || function == "S2T_MEMBERS") {
    if (args.size() > 2) {
      return Status::InvalidArgument(
          function + "(D[, sigma[, eps]]) takes at most 2 numbers" + at);
    }
    // Trailing args omitted -> session defaults (SET hermes.sigma/...).
    const double sigma = args.size() >= 1 ? args[0] : env.default_sigma;
    const double eps = args.size() >= 2 ? args[1] : env.default_epsilon;
    core::S2TParams params;
    params.SetSigma(sigma).SetEpsilon(eps);
    params.use_index = env.use_index;
    core::S2TClustering s2t(params);
    HERMES_ASSIGN_OR_RETURN(core::S2TResult result, s2t.Run(store, env.exec));
    // A live context records the s2t_* phases itself (core::RunPhases);
    // exporting here too would double-count them in SHOW STATS.
    if (env.exec == nullptr && env.session_stats != nullptr) {
      result.timings.ExportTo(env.session_stats);
    }

    if (function == "S2T") {
      Table table;
      table.columns = {{"cluster_id", ValueType::kInt},
                       {"size", ValueType::kInt},
                       {"rep_object", ValueType::kInt},
                       {"start", ValueType::kDouble},
                       {"end", ValueType::kDouble}};
      for (size_t ci = 0; ci < result.clustering.clusters.size(); ++ci) {
        const auto& c = result.clustering.clusters[ci];
        const auto& rep = result.sub_trajectories[c.representative];
        table.rows.push_back(
            {Value::Int(static_cast<int64_t>(ci)),
             Value::Int(static_cast<int64_t>(c.members.size())),
             Value::Int(static_cast<int64_t>(rep.object_id)),
             Value::Double(rep.StartTime()), Value::Double(rep.EndTime())});
      }
      table.rows.push_back(
          {Value::Str("outliers"),
           Value::Int(static_cast<int64_t>(result.clustering.outliers.size())),
           Value::Null(), Value::Null(), Value::Null()});
      return MakeTableCursor(std::move(table));
    }

    // S2T_MEMBERS: one row per cluster member (clusters in order), then
    // one per outlier with a NULL cluster_id. The clustering ran eagerly
    // above (it is the dominant cost); rows materialize on demand.
    struct MembersState {
      core::S2TResult result;
      std::shared_ptr<const traj::TrajectoryStore> snap;  // Keeps the pin.
      size_t ci = 0, mi = 0, oi = 0;
    };
    auto state = std::make_shared<MembersState>();
    state->result = std::move(result);
    state->snap = env.store;
    GeneratorCursor::Generator gen =
        [state](std::vector<Value>* row) -> StatusOr<bool> {
      const auto& r = state->result;
      auto fill = [&](Value cluster_id, size_t sub_index) {
        const traj::SubTrajectory& sub = r.sub_trajectories[sub_index];
        *row = {std::move(cluster_id),
                Value::Int(static_cast<int64_t>(sub.object_id)),
                Value::Double(sub.StartTime()), Value::Double(sub.EndTime()),
                Value::Int(static_cast<int64_t>(sub.points.size()))};
      };
      while (state->ci < r.clustering.clusters.size()) {
        const auto& c = r.clustering.clusters[state->ci];
        if (state->mi < c.members.size()) {
          fill(Value::Int(static_cast<int64_t>(state->ci)),
               c.members[state->mi++]);
          return true;
        }
        ++state->ci;
        state->mi = 0;
      }
      if (state->oi < r.clustering.outliers.size()) {
        fill(Value::Null(), r.clustering.outliers[state->oi++]);
        return true;
      }
      return false;
    };
    return std::unique_ptr<RowCursor>(std::make_unique<GeneratorCursor>(
        std::vector<Column>{{"cluster_id", ValueType::kInt},
                            {"object_id", ValueType::kInt},
                            {"start", ValueType::kDouble},
                            {"end", ValueType::kDouble},
                            {"points", ValueType::kInt}},
        std::move(gen)));
  }

  if (function == "TRACLUS") {
    if (args.size() != 2) {
      return Status::InvalidArgument("TRACLUS(D, eps, min_lns) takes 2 numbers" +
                                     at);
    }
    baselines::TraclusParams params;
    params.eps = args[0];
    params.min_lns = static_cast<size_t>(args[1]);
    const baselines::TraclusResult result =
        baselines::RunTraclus(store, params);
    Table table;
    table.columns = {{"cluster_id", ValueType::kInt},
                     {"segments", ValueType::kInt},
                     {"trajectories", ValueType::kInt},
                     {"rep_points", ValueType::kInt}};
    for (size_t ci = 0; ci < result.clusters.size(); ++ci) {
      const auto& c = result.clusters[ci];
      table.rows.push_back(
          {Value::Int(static_cast<int64_t>(ci)),
           Value::Int(static_cast<int64_t>(c.segment_indices.size())),
           Value::Int(static_cast<int64_t>(c.distinct_trajectories)),
           Value::Int(static_cast<int64_t>(c.representative.size()))});
    }
    table.rows.push_back(
        {Value::Str("noise"),
         Value::Int(static_cast<int64_t>(result.noise.size())), Value::Null(),
         Value::Null()});
    return MakeTableCursor(std::move(table));
  }

  if (function == "TOPTICS") {
    if (args.size() != 2) {
      return Status::InvalidArgument("TOPTICS(D, eps, min_pts) takes 2 numbers" +
                                     at);
    }
    baselines::TOpticsParams params;
    params.eps = args[0];
    params.min_pts = static_cast<size_t>(args[1]);
    const baselines::TOpticsResult result =
        baselines::RunTOptics(store, params);
    Table table;
    table.columns = {{"cluster_id", ValueType::kInt},
                     {"trajectories", ValueType::kInt}};
    std::vector<size_t> sizes(result.num_clusters, 0);
    size_t noise = 0;
    for (int label : result.labels) {
      if (label >= 0) {
        ++sizes[label];
      } else {
        ++noise;
      }
    }
    for (size_t ci = 0; ci < sizes.size(); ++ci) {
      table.rows.push_back({Value::Int(static_cast<int64_t>(ci)),
                            Value::Int(static_cast<int64_t>(sizes[ci]))});
    }
    table.rows.push_back(
        {Value::Str("noise"), Value::Int(static_cast<int64_t>(noise))});
    return MakeTableCursor(std::move(table));
  }

  if (function == "CONVOYS") {
    if (args.size() != 4) {
      return Status::InvalidArgument(
          "CONVOYS(D, eps, m, k, dt) takes 4 numbers" + at);
    }
    baselines::ConvoyParams params;
    params.eps = args[0];
    params.m = static_cast<size_t>(args[1]);
    params.k = static_cast<size_t>(args[2]);
    params.snapshot_dt = args[3];
    const auto convoys = baselines::DiscoverConvoys(store, params);
    Table table;
    table.columns = {{"convoy_id", ValueType::kInt},
                     {"objects", ValueType::kInt},
                     {"start", ValueType::kDouble},
                     {"end", ValueType::kDouble}};
    for (size_t ci = 0; ci < convoys.size(); ++ci) {
      table.rows.push_back(
          {Value::Int(static_cast<int64_t>(ci)),
           Value::Int(static_cast<int64_t>(convoys[ci].objects.size())),
           Value::Double(convoys[ci].start_time),
           Value::Double(convoys[ci].end_time)});
    }
    return MakeTableCursor(std::move(table));
  }

  return Status::NotSupported("unknown function " + function + at);
}

Table PhaseStatsTable(const exec::ExecStats& session_stats,
                      const exec::ExecContext* exec) {
  // Session-accumulated stats plus the live exec context's, merged.
  std::map<std::string, int64_t> merged = session_stats.PhaseTimings();
  if (exec != nullptr) {
    for (const auto& [phase, us] : exec->stats().PhaseTimings()) {
      merged[phase] += us;
    }
  }
  Table table;
  table.columns = {{"phase", ValueType::kString},
                   {"total_us", ValueType::kInt}};
  for (const auto& [phase, us] : merged) {
    table.rows.push_back({Value::Str(phase), Value::Int(us)});
  }
  return table;
}

void AccumulateHotTierStats(const core::HotTierStats& s,
                            core::HotTierStats* total) {
  total->qut_hot_probes += s.qut_hot_probes;
  total->qut_cold_probes += s.qut_cold_probes;
  total->hot_promotions += s.hot_promotions;
  total->hot_demotions += s.hot_demotions;
  total->hot_index_bytes += s.hot_index_bytes;
  total->hot_partitions += s.hot_partitions;
  total->hot_pins_total += s.hot_pins_total;
}

void AppendHotTierRows(const core::HotTierStats& tier, Table* table) {
  auto row = [table](const char* name, uint64_t v) {
    table->rows.push_back(
        {Value::Str(name), Value::Int(static_cast<int64_t>(v))});
  };
  row("qut_hot_probes", tier.qut_hot_probes);
  row("qut_cold_probes", tier.qut_cold_probes);
  row("hot_promotions", tier.hot_promotions);
  row("hot_demotions", tier.hot_demotions);
  row("hot_index_bytes", tier.hot_index_bytes);
  row("hot_partitions", tier.hot_partitions);
  row("hot_pins_total", tier.hot_pins_total);
}

StatusOr<Table> SettingsShowTable(const Settings& settings,
                                  const Statement& stmt) {
  Table table;
  table.columns = {{"name", ValueType::kString},
                   {"value", ValueType::kNull},  // Native type per setting.
                   {"type", ValueType::kString},
                   {"description", ValueType::kString}};
  auto row = [](const Settings::Setting& s) {
    return std::vector<Value>{Value::Str(s.name), s.value,
                              Value::Str(ValueTypeName(s.type())),
                              Value::Str(s.description)};
  };
  if (stmt.setting == "all") {
    for (const Settings::Setting* s : settings.All()) {
      table.rows.push_back(row(*s));
    }
    return table;
  }
  const Settings::Setting* s = settings.Find(stmt.setting);
  if (s == nullptr) {
    return Status::NotSupported("unrecognized setting " + stmt.setting +
                                ErrorLocation(stmt.setting_pos, stmt.setting));
  }
  table.rows.push_back(row(*s));
  return table;
}

StatusOr<Table> RunScript(
    const std::string& sql,
    const std::function<StatusOr<std::unique_ptr<RowCursor>>(
        const Statement&)>& run) {
  HERMES_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseScript(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty script");
  Table last;
  for (size_t k = 0; k < stmts.size(); ++k) {
    auto prefix = [&] { return "statement " + std::to_string(k + 1) + ": "; };
    if (stmts[k].num_params > 0) {
      return Status::InvalidArgument(
          prefix() + "script statements cannot carry $N placeholders");
    }
    auto cursor = run(stmts[k]);
    if (!cursor.ok()) {
      return Status(cursor.status().code(),
                    prefix() + cursor.status().message());
    }
    auto table = (*cursor)->ToTable();
    if (!table.ok()) {
      return Status(table.status().code(),
                    prefix() + table.status().message());
    }
    last = std::move(*table);
  }
  return last;
}

void SwapExecContext(size_t n, std::unique_ptr<exec::ExecContext>* exec,
                     exec::ExecStats* archive) {
  // A context's thread count is fixed at construction; the retiring
  // context's phase timings fold into the archive so SHOW STATS keeps
  // accumulating across the swap.
  if (*exec != nullptr && archive != nullptr) {
    for (const auto& [phase, us] : (*exec)->stats().PhaseTimings()) {
      archive->RecordPhaseUs(phase, us);
    }
  }
  *exec = n > 1 ? std::make_unique<exec::ExecContext>(n) : nullptr;
}

core::ReTraTreeParams MakeQutTreeParams(
    const std::vector<double>& tree_params) {
  core::ReTraTreeParams params;
  params.tau = tree_params[0];
  params.delta = tree_params[1];
  params.t_align = tree_params[2];
  params.d_assign = tree_params[3];
  params.gamma = static_cast<size_t>(tree_params[4]);
  params.s2t.SetSigma(params.d_assign).SetEpsilon(params.d_assign);
  return params;
}

StatusOr<std::unique_ptr<RowCursor>> QutQuery(core::ReTraTree* tree,
                                              double wi, double we,
                                              exec::ExecStats* session_stats) {
  core::QuTClustering qut(tree);
  const int64_t t0 = NowUs();
  HERMES_ASSIGN_OR_RETURN(core::QuTResult result, qut.Query(wi, we));
  if (session_stats != nullptr) {
    session_stats->RecordPhaseUs("qut_query", NowUs() - t0);
  }
  Table table;
  table.columns = {{"cluster_id", ValueType::kInt},
                   {"pieces", ValueType::kInt},
                   {"members", ValueType::kInt},
                   {"start", ValueType::kDouble},
                   {"end", ValueType::kDouble}};
  for (size_t ci = 0; ci < result.clusters.size(); ++ci) {
    const auto& c = result.clusters[ci];
    table.rows.push_back(
        {Value::Int(static_cast<int64_t>(ci)),
         Value::Int(static_cast<int64_t>(c.representatives.size())),
         Value::Int(static_cast<int64_t>(c.members.size())),
         Value::Double(c.StartTime()), Value::Double(c.EndTime())});
  }
  table.rows.push_back(
      {Value::Str("outliers"), Value::Null(),
       Value::Int(static_cast<int64_t>(result.outliers.size())),
       Value::Double(wi), Value::Double(we)});
  return MakeTableCursor(std::move(table));
}

}  // namespace hermes::sql
