#include "sql/value.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hermes::sql {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(v_));
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.4g", std::get<double>(v_));
      return buf;
    }
    case ValueType::kString:
      return std::get<std::string>(v_);
  }
  return "";
}

std::string Table::ToString() const {
  // Column widths over the rendered cells.
  std::vector<size_t> widths(columns.size(), 0);
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].name.size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& v : row) cells.push_back(v.ToString());
    for (size_t c = 0; c < cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], cells[c].size());
    }
    rendered.push_back(std::move(cells));
  }
  std::ostringstream out;
  auto line = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      out << "| " << (c < cells.size() ? cells[c] : "");
      out << std::string(
          widths[c] - std::min(widths[c],
                               c < cells.size() ? cells[c].size() : 0),
          ' ');
      out << ' ';
    }
    out << "|\n";
  };
  std::vector<std::string> header;
  header.reserve(columns.size());
  for (const auto& col : columns) header.push_back(col.name);
  line(header);
  for (size_t c = 0; c < widths.size(); ++c) {
    out << "+" << std::string(widths[c] + 2, '-');
  }
  out << "+\n";
  for (const auto& cells : rendered) line(cells);
  return out.str();
}

}  // namespace hermes::sql
