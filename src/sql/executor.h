#ifndef HERMES_SQL_EXECUTOR_H_
#define HERMES_SQL_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/qut_clustering.h"
#include "core/retratree.h"
#include "exec/exec_context.h"
#include "sql/cursor.h"
#include "sql/parser.h"
#include "sql/query_functions.h"
#include "sql/settings.h"
#include "sql/value.h"
#include "storage/env.h"
#include "traj/trajectory_store.h"

namespace hermes::sql {

/// \brief An interactive Hermes session: named MODs, lazily-built
/// ReTraTrees, a GUC-style settings registry, and statement execution —
/// the embedded counterpart of the demo's psql session against
/// Hermes@PostgreSQL.
///
/// Registered settings (see `docs/SQL.md`):
///   hermes.threads    int     worker threads for analytic statements
///   hermes.sigma      double  default S2T spatial bandwidth
///   hermes.epsilon    double  default S2T cluster radius
///   hermes.use_index  int     0/1 (off/on): pg3D-Rtree voting engine
///   hermes.hot_index_budget int  hot in-memory tier bytes (0 = off)
class Session {
 public:
  /// `env` defaults to a private in-memory environment; pass a Posix env
  /// + directory to persist ReTraTree partitions.
  explicit Session(storage::Env* env = nullptr,
                   std::string data_dir = "hermes_data");

  // Pinned in place: the settings registry's on-change hooks and every
  // PreparedStatement/RowCursor hold a pointer to this session.
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&&) = delete;
  Session& operator=(Session&&) = delete;

  /// Parses and executes one statement, materializing the full result.
  /// (Implemented as `ExecuteCursor` drained into a `Table`.)
  StatusOr<Table> Execute(const std::string& sql);

  /// Parses and executes one statement, returning a pull-based cursor.
  /// `RANGE` and `S2T_MEMBERS` produce rows incrementally; other
  /// statements return a cursor over their materialized table. The cursor
  /// borrows session state: it must not outlive the session, and DDL on
  /// the MOD it reads invalidates it.
  StatusOr<std::unique_ptr<RowCursor>> ExecuteCursor(const std::string& sql);

  /// Parses a statement with `$N` placeholders into a reusable handle.
  StatusOr<PreparedStatement> Prepare(const std::string& sql);

  /// Executes a ';'-separated script, returning the last statement's
  /// table. Empty statements are skipped; an error in statement k aborts
  /// the script with the statement's 1-based ordinal prefixed.
  StatusOr<Table> ExecuteScript(const std::string& sql);

  /// Direct access for embedding (e.g. loading a generated scenario).
  Status RegisterStore(const std::string& name, traj::TrajectoryStore store);
  const traj::TrajectoryStore* FindStore(const std::string& name) const;

  /// The run-time settings registry (`SET` / `SHOW` surface).
  const Settings& settings() const { return settings_; }

  /// Worker threads granted to S2T/QUT statements (`SET hermes.threads`).
  size_t threads() const { return threads_; }

  /// The session's execution context (nullptr while `threads() == 1`).
  exec::ExecContext* exec_context() { return exec_.get(); }

  /// Session-accumulated statistics (S2T phase breakdowns, QUT query
  /// wall times) — the typed source behind `SHOW STATS`.
  const exec::ExecStats& stats() const { return session_stats_; }

 private:
  struct ModEntry {
    traj::TrajectoryStore store;
    std::unique_ptr<core::ReTraTree> tree;
    /// (tau, delta, t, d, gamma) the tree was built with.
    std::vector<double> tree_params;
  };

  void RegisterSettings();
  StatusOr<std::unique_ptr<RowCursor>> ExecuteStatement(
      const Statement& stmt, const std::vector<Value>& binds);
  StatusOr<std::unique_ptr<RowCursor>> ExecuteSelect(
      const Statement& stmt, const std::vector<Value>& binds);
  StatusOr<std::unique_ptr<RowCursor>> ExecuteShow(const Statement& stmt);
  StatusOr<ModEntry*> FindMod(const std::string& name);

  std::unique_ptr<storage::Env> owned_env_;
  storage::Env* env_;
  std::string data_dir_;
  std::map<std::string, ModEntry> mods_;
  uint64_t tree_seq_ = 0;
  Settings settings_;
  exec::ExecStats session_stats_;
  /// Parallelism of analytic statements; kept in sync with the
  /// hermes.threads setting by its on-change hook. nullptr = sequential.
  size_t threads_ = 1;
  std::unique_ptr<exec::ExecContext> exec_;
};

}  // namespace hermes::sql

#endif  // HERMES_SQL_EXECUTOR_H_
