#ifndef HERMES_SQL_EXECUTOR_H_
#define HERMES_SQL_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/qut_clustering.h"
#include "core/retratree.h"
#include "exec/exec_context.h"
#include "sql/parser.h"
#include "storage/env.h"
#include "traj/trajectory_store.h"

namespace hermes::sql {

/// \brief Tabular result of a statement (printable, test-inspectable).
struct Table {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  std::string ToString() const;
};

/// \brief An interactive Hermes session: named MODs, lazily-built
/// ReTraTrees, and statement execution — the embedded counterpart of the
/// demo's psql session against Hermes@PostgreSQL.
class Session {
 public:
  /// `env` defaults to a private in-memory environment; pass a Posix env
  /// + directory to persist ReTraTree partitions.
  explicit Session(storage::Env* env = nullptr,
                   std::string data_dir = "hermes_data");

  /// Parses and executes one statement.
  StatusOr<Table> Execute(const std::string& sql);

  /// Executes a ';'-separated script, returning the last statement's table.
  StatusOr<Table> ExecuteScript(const std::string& sql);

  /// Direct access for embedding (e.g. loading a generated scenario).
  Status RegisterStore(const std::string& name, traj::TrajectoryStore store);
  const traj::TrajectoryStore* FindStore(const std::string& name) const;

  /// Worker threads granted to S2T/QUT statements (`SET hermes.threads`).
  size_t threads() const { return threads_; }

  /// The session's execution context (nullptr while `threads() == 1`).
  exec::ExecContext* exec_context() { return exec_.get(); }

 private:
  struct ModEntry {
    traj::TrajectoryStore store;
    std::unique_ptr<core::ReTraTree> tree;
    /// (tau, delta, t, d, gamma) the tree was built with.
    std::vector<double> tree_params;
  };

  StatusOr<Table> ExecuteStatement(const Statement& stmt);
  StatusOr<Table> ExecuteSelect(const Statement& stmt);
  StatusOr<ModEntry*> FindMod(const std::string& name);

  std::unique_ptr<storage::Env> owned_env_;
  storage::Env* env_;
  std::string data_dir_;
  std::map<std::string, ModEntry> mods_;
  uint64_t tree_seq_ = 0;
  /// Parallelism of analytic statements; owned pool lives as long as the
  /// setting is unchanged. nullptr = sequential (threads_ == 1).
  size_t threads_ = 1;
  std::unique_ptr<exec::ExecContext> exec_;
};

}  // namespace hermes::sql

#endif  // HERMES_SQL_EXECUTOR_H_
