#include "sql/cursor.h"

namespace hermes::sql {

StatusOr<Table> RowCursor::ToTable() {
  Table table;
  table.columns = columns_;
  std::vector<Value> row;
  while (true) {
    HERMES_ASSIGN_OR_RETURN(bool more, Next(&row));
    if (!more) break;
    table.rows.push_back(std::move(row));
    row.clear();
  }
  return table;
}

}  // namespace hermes::sql
