#ifndef HERMES_SQL_STATEMENT_EXECUTOR_H_
#define HERMES_SQL_STATEMENT_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "sql/cursor.h"
#include "sql/query_functions.h"
#include "sql/value.h"

namespace hermes::sql {

class Session;

/// \brief Handle returned by `StatementExecutor::Prepare`: an
/// executor-scoped statement id plus the statement's `$N` parameter
/// count. The id is meaningful only to the executor that issued it.
struct PreparedHandle {
  uint32_t id = 0;
  int num_params = 0;
};

/// \brief The one statement surface every Hermes backend speaks.
///
/// A `StatementExecutor` hides *where* a statement runs: against the
/// embedded `sql::Session`, an in-process `service::ClientSession`, a
/// remote server through `net::Client`, or a `shard::Coordinator`
/// fanning it across shards. Coordinators, examples, benches, and tests
/// address every backend through this interface, so swapping an
/// in-process shard for a remote one is a construction-time decision,
/// not a call-site rewrite.
///
/// Prepared statements are id-keyed (the wire protocol's model): the
/// executor chooses the id, `BindExecute` binds `$1..$n` positionally
/// from `binds` and executes. Backends whose native Prepare returns a
/// `PreparedStatement` adapt through `PreparedStatementMapExecutor`.
///
/// Thread safety: one executor serves one client thread, exactly like
/// the sessions it wraps.
class StatementExecutor {
 public:
  virtual ~StatementExecutor() = default;

  /// Parses and executes one statement, materializing the full result.
  virtual StatusOr<Table> Execute(const std::string& sql) = 0;

  /// Cursor-returning flavor. Backends without streaming (the wire
  /// protocol) materialize via `Execute` and wrap the table.
  virtual StatusOr<std::unique_ptr<RowCursor>> ExecuteCursor(
      const std::string& sql);

  /// Parses a statement with `$N` placeholders once; the handle's id is
  /// valid until `ClosePrepared` (or the executor dies).
  virtual StatusOr<PreparedHandle> Prepare(const std::string& sql) = 0;

  /// Binds `$1..$binds.size()` in order and executes statement `id`.
  virtual StatusOr<Table> BindExecute(uint32_t id,
                                      const std::vector<Value>& binds) = 0;

  /// Releases a `Prepare` handle. Backends without statement
  /// deallocation (the wire protocol) treat this as a no-op.
  virtual Status ClosePrepared(uint32_t id);

  /// Blocks until every previously issued write is applied and
  /// query-visible (the FLUSH statement; a no-op ack on synchronous
  /// backends).
  virtual Status Flush();
};

/// \brief Adapter base for frontends whose native Prepare returns a
/// `sql::PreparedStatement`: keeps the id -> handle map and implements
/// the id-keyed `Prepare` / `BindExecute` / `ClosePrepared` on top of
/// one virtual, `PrepareStatement`.
class PreparedStatementMapExecutor : public StatementExecutor {
 public:
  StatusOr<PreparedHandle> Prepare(const std::string& sql) override;
  StatusOr<Table> BindExecute(uint32_t id,
                              const std::vector<Value>& binds) override;
  Status ClosePrepared(uint32_t id) override;

 protected:
  virtual StatusOr<PreparedStatement> PrepareStatement(
      const std::string& sql) = 0;

 private:
  std::map<uint32_t, PreparedStatement> prepared_;
  uint32_t next_id_ = 1;
};

/// Wraps the embedded `sql::Session` (non-owning; the session must
/// outlive the executor and every cursor it returned).
std::unique_ptr<StatementExecutor> MakeSessionExecutor(Session* session);

}  // namespace hermes::sql

#endif  // HERMES_SQL_STATEMENT_EXECUTOR_H_
