#include "sql/tokenizer.h"

#include <cctype>
#include <cstdlib>

namespace hermes::sql {

std::string ErrorLocation(size_t position, const std::string& token) {
  return " at position " + std::to_string(position) +
         (token.empty() ? " near end of input" : " near '" + token + "'");
}

StatusOr<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      // Line comment.
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      tok.kind = TokenKind::kIdentifier;
      tok.text = input.substr(i, j - i);
      for (char& ch : tok.text) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1]))) ||
               ((c == '-' || c == '+') && i + 1 < n &&
                (std::isdigit(static_cast<unsigned char>(input[i + 1])) ||
                 input[i + 1] == '.'))) {
      char* end = nullptr;
      const double v = std::strtod(input.c_str() + i, &end);
      if (end == input.c_str() + i) {
        return Status::InvalidArgument("bad number at position " +
                                       std::to_string(i));
      }
      tok.kind = TokenKind::kNumber;
      tok.number = v;
      tok.text = input.substr(i, end - (input.c_str() + i));
      tok.is_integer =
          tok.text.find_first_not_of("+-0123456789") == std::string::npos;
      i = static_cast<size_t>(end - input.c_str());
    } else if (c == '$') {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j == i + 1) {
        return Status::InvalidArgument(
            "expected digits after '$' at position " + std::to_string(i));
      }
      tok.kind = TokenKind::kParam;
      tok.text = input.substr(i, j - i);
      // <= 3 digits keeps the atoi below overflow-free.
      if (j - i - 1 > 3) {
        return Status::InvalidArgument("parameter index out of range [1, 999]" +
                                       ErrorLocation(i, tok.text));
      }
      tok.param_index = std::atoi(input.c_str() + i + 1);
      if (tok.param_index < 1 || tok.param_index > 999) {
        return Status::InvalidArgument("parameter index out of range [1, 999]" +
                                       ErrorLocation(i, tok.text));
      }
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string value;
      while (j < n && input[j] != '\'') value.push_back(input[j++]);
      if (j >= n) {
        return Status::InvalidArgument("unterminated string at position " +
                                       std::to_string(i));
      }
      tok.kind = TokenKind::kString;
      tok.text = value;
      i = j + 1;
    } else if (c == '(') {
      tok.kind = TokenKind::kLParen;
      tok.text = "(";
      ++i;
    } else if (c == ')') {
      tok.kind = TokenKind::kRParen;
      tok.text = ")";
      ++i;
    } else if (c == ',') {
      tok.kind = TokenKind::kComma;
      tok.text = ",";
      ++i;
    } else if (c == ';') {
      tok.kind = TokenKind::kSemicolon;
      tok.text = ";";
      ++i;
    } else if (c == '.') {
      tok.kind = TokenKind::kDot;
      tok.text = ".";
      ++i;
    } else if (c == '=') {
      tok.kind = TokenKind::kEquals;
      tok.text = "=";
      ++i;
    } else {
      return Status::InvalidArgument("unexpected character" +
                                     ErrorLocation(i, std::string(1, c)));
    }
    tokens.push_back(std::move(tok));
  }
  Token end_tok;
  end_tok.kind = TokenKind::kEnd;
  end_tok.position = n;
  tokens.push_back(end_tok);
  return tokens;
}

}  // namespace hermes::sql
