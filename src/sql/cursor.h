#ifndef HERMES_SQL_CURSOR_H_
#define HERMES_SQL_CURSOR_H_

#include <functional>
#include <utility>
#include <vector>

#include "common/statusor.h"
#include "sql/value.h"

namespace hermes::sql {

/// \brief A pull-based row stream — the session's counterpart of a
/// PostgreSQL cursor.
///
/// `Session::ExecuteCursor` returns one of these for every statement;
/// `Session::Execute` is just a cursor drained into a `Table`. Statements
/// with large outputs (`RANGE`, `S2T_MEMBERS`) produce rows incrementally
/// in `Next`, so a caller consuming the first k rows never materializes
/// the rest.
///
/// Lifetime: a cursor may borrow session state (a MOD's trajectory store,
/// a clustering result). It must not outlive its `Session`, and DDL on the
/// MOD it reads (`DROP MOD`, `INSERT INTO`, `LOAD MOD`) invalidates it.
class RowCursor {
 public:
  explicit RowCursor(std::vector<Column> columns)
      : columns_(std::move(columns)) {}
  virtual ~RowCursor() = default;

  RowCursor(const RowCursor&) = delete;
  RowCursor& operator=(const RowCursor&) = delete;

  const std::vector<Column>& columns() const { return columns_; }

  /// Advances one row. Returns true with `*row` replaced by the next row,
  /// false (leaving `*row` untouched) once exhausted, or an error status.
  virtual StatusOr<bool> Next(std::vector<Value>* row) = 0;

  /// Drains the remaining rows into a `Table` (columns + rows consumed so
  /// far are *not* rewound; call on a fresh cursor for the full result).
  StatusOr<Table> ToTable();

 protected:
  std::vector<Column> columns_;
};

/// \brief Cursor over an already-materialized `Table` (DDL acks, STATS,
/// cluster summaries — everything small enough to build eagerly).
class TableCursor : public RowCursor {
 public:
  explicit TableCursor(Table table)
      : RowCursor(std::move(table.columns)), rows_(std::move(table.rows)) {}

  StatusOr<bool> Next(std::vector<Value>* row) override {
    if (next_ >= rows_.size()) return false;
    *row = std::move(rows_[next_++]);
    return true;
  }

 private:
  std::vector<std::vector<Value>> rows_;
  size_t next_ = 0;
};

/// \brief Cursor driven by a generator callback: the executor captures
/// whatever state the statement needs (store pointer, clustering result)
/// and produces rows on demand. The generator has `Next` semantics:
/// fill `*row` and return true, or return false when exhausted.
class GeneratorCursor : public RowCursor {
 public:
  using Generator = std::function<StatusOr<bool>(std::vector<Value>*)>;

  GeneratorCursor(std::vector<Column> columns, Generator gen)
      : RowCursor(std::move(columns)), gen_(std::move(gen)) {}

  StatusOr<bool> Next(std::vector<Value>* row) override {
    if (done_) return false;
    HERMES_ASSIGN_OR_RETURN(bool more, gen_(row));
    if (!more) done_ = true;
    return more;
  }

 private:
  Generator gen_;
  bool done_ = false;
};

}  // namespace hermes::sql

#endif  // HERMES_SQL_CURSOR_H_
