#ifndef HERMES_SQL_TOKENIZER_H_
#define HERMES_SQL_TOKENIZER_H_

#include <string>
#include <vector>

#include "common/statusor.h"

namespace hermes::sql {

/// \brief Token kinds of the Hermes SQL dialect.
enum class TokenKind {
  kIdentifier,  ///< Bare word (keywords are identifiers, case-insensitive).
  kNumber,      ///< Numeric literal.
  kString,      ///< 'single-quoted' literal.
  kParam,       ///< '$N' prepared-statement placeholder (1-based).
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kDot,     ///< '.' (setting-name separator, e.g. hermes.threads).
  kEquals,  ///< '=' (SET assignment).
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    ///< Raw text (identifiers upper-cased).
  double number = 0.0; ///< Valid for kNumber.
  int param_index = 0; ///< Valid for kParam: the N of '$N' (>= 1).
  size_t position = 0; ///< Byte offset in the input (for errors).
  /// True when the literal spelling has no '.', exponent, or 'inf'/'nan'
  /// — i.e. the number reads as an integer. Valid for kNumber.
  bool is_integer = false;
};

/// \brief Splits `input` into tokens; fails with InvalidArgument on
/// malformed literals or stray characters.
StatusOr<std::vector<Token>> Tokenize(const std::string& input);

/// \brief " at position N near 'tok'" — the uniform location suffix of
/// tokenizer, parser, and executor diagnostics. An empty `token` renders
/// as "near end of input".
std::string ErrorLocation(size_t position, const std::string& token);

}  // namespace hermes::sql

#endif  // HERMES_SQL_TOKENIZER_H_
