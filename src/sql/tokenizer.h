#ifndef HERMES_SQL_TOKENIZER_H_
#define HERMES_SQL_TOKENIZER_H_

#include <string>
#include <vector>

#include "common/statusor.h"

namespace hermes::sql {

/// \brief Token kinds of the Hermes SQL dialect.
enum class TokenKind {
  kIdentifier,  ///< Bare word (keywords are identifiers, case-insensitive).
  kNumber,      ///< Numeric literal.
  kString,      ///< 'single-quoted' literal.
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kDot,     ///< '.' (setting-name separator, e.g. hermes.threads).
  kEquals,  ///< '=' (SET assignment).
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    ///< Raw text (identifiers upper-cased).
  double number = 0.0; ///< Valid for kNumber.
  size_t position = 0; ///< Byte offset in the input (for errors).
};

/// \brief Splits `input` into tokens; fails with InvalidArgument on
/// malformed literals or stray characters.
StatusOr<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace hermes::sql

#endif  // HERMES_SQL_TOKENIZER_H_
