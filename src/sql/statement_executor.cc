#include "sql/statement_executor.h"

#include <utility>

#include "sql/executor.h"

namespace hermes::sql {

StatusOr<std::unique_ptr<RowCursor>> StatementExecutor::ExecuteCursor(
    const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(Table table, Execute(sql));
  return MakeTableCursor(std::move(table));
}

Status StatementExecutor::ClosePrepared(uint32_t /*id*/) {
  return Status::OK();
}

Status StatementExecutor::Flush() {
  HERMES_ASSIGN_OR_RETURN(Table ack, Execute("FLUSH;"));
  (void)ack;
  return Status::OK();
}

StatusOr<PreparedHandle> PreparedStatementMapExecutor::Prepare(
    const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(PreparedStatement ps, PrepareStatement(sql));
  const uint32_t id = next_id_++;
  PreparedHandle handle{id, ps.num_params()};
  prepared_.emplace(id, std::move(ps));
  return handle;
}

StatusOr<Table> PreparedStatementMapExecutor::BindExecute(
    uint32_t id, const std::vector<Value>& binds) {
  auto it = prepared_.find(id);
  if (it == prepared_.end()) {
    return Status::NotFound("no prepared statement with id " +
                            std::to_string(id));
  }
  for (size_t i = 0; i < binds.size(); ++i) {
    HERMES_RETURN_NOT_OK(it->second.Bind(static_cast<int>(i) + 1, binds[i]));
  }
  return it->second.Execute();
}

Status PreparedStatementMapExecutor::ClosePrepared(uint32_t id) {
  prepared_.erase(id);
  return Status::OK();
}

namespace {

/// The embedded backend: statements run synchronously in-process, so
/// FLUSH's default (execute the statement, discard the ack) is exact.
class SessionExecutor final : public PreparedStatementMapExecutor {
 public:
  explicit SessionExecutor(Session* session) : session_(session) {}

  StatusOr<Table> Execute(const std::string& sql) override {
    return session_->Execute(sql);
  }

  StatusOr<std::unique_ptr<RowCursor>> ExecuteCursor(
      const std::string& sql) override {
    return session_->ExecuteCursor(sql);
  }

 protected:
  StatusOr<PreparedStatement> PrepareStatement(
      const std::string& sql) override {
    return session_->Prepare(sql);
  }

 private:
  Session* session_;
};

}  // namespace

std::unique_ptr<StatementExecutor> MakeSessionExecutor(Session* session) {
  return std::make_unique<SessionExecutor>(session);
}

}  // namespace hermes::sql
