#include "sql/settings.h"

#include <cctype>
#include <cmath>
#include <utility>

namespace hermes::sql {

std::string Settings::Canonical(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

Status Settings::Register(std::string name, Value default_value,
                          std::string description, Validator validate,
                          OnChange on_change) {
  if (default_value.is_null()) {
    return Status::InvalidArgument("setting " + name +
                                   " needs a typed (non-null) default");
  }
  std::string key = Canonical(name);
  if (settings_.count(key) > 0) {
    return Status::AlreadyExists("setting " + key + " already registered");
  }
  Setting s;
  s.name = key;
  s.description = std::move(description);
  s.value = default_value;
  s.default_value = std::move(default_value);
  s.validate = std::move(validate);
  s.on_change = std::move(on_change);
  settings_.emplace(std::move(key), std::move(s));
  return Status::OK();
}

namespace {

/// Coerces `v` to the registered type of `s` (int<->double widening /
/// integral narrowing only), or explains why it cannot.
StatusOr<Value> Coerce(const Settings::Setting& s, const Value& v) {
  if (v.type() == s.type()) return v;
  if (s.type() == ValueType::kInt && v.type() == ValueType::kDouble) {
    const double d = v.AsDouble();
    if (d != std::floor(d) || std::abs(d) > 9.0e18) {
      return Status::InvalidArgument(s.name + " must be an integer, got " +
                                     v.ToString());
    }
    return Value::Int(static_cast<int64_t>(d));
  }
  if (s.type() == ValueType::kDouble && v.type() == ValueType::kInt) {
    return Value::Double(v.AsDouble());
  }
  return Status::InvalidArgument(s.name + " expects a " +
                                 ValueTypeName(s.type()) + " value, got " +
                                 ValueTypeName(v.type()) +
                                 (v.is_null() ? "" : " '" + v.ToString() + "'"));
}

}  // namespace

Status Settings::Set(const std::string& name, Value v) {
  auto it = settings_.find(Canonical(name));
  if (it == settings_.end()) {
    return Status::NotSupported("unrecognized setting " + Canonical(name));
  }
  Setting& s = it->second;
  HERMES_ASSIGN_OR_RETURN(Value coerced, Coerce(s, v));
  if (s.validate) HERMES_RETURN_NOT_OK(s.validate(coerced));
  Value previous = s.value;
  s.value = coerced;
  if (s.on_change) {
    Status hook = s.on_change(coerced);
    if (!hook.ok()) {
      s.value = std::move(previous);
      return hook;
    }
  }
  return Status::OK();
}

StatusOr<Value> Settings::Get(const std::string& name) const {
  const Setting* s = Find(name);
  if (s == nullptr) {
    return Status::NotSupported("unrecognized setting " + Canonical(name));
  }
  return s->value;
}

const Settings::Setting* Settings::Find(const std::string& name) const {
  auto it = settings_.find(Canonical(name));
  return it == settings_.end() ? nullptr : &it->second;
}

std::vector<const Settings::Setting*> Settings::All() const {
  std::vector<const Setting*> out;
  out.reserve(settings_.size());
  for (const auto& [key, s] : settings_) out.push_back(&s);
  return out;
}

Status RegisterHermesSettings(
    Settings* settings, const HermesSettingDefaults& defaults,
    std::function<Status(size_t)> on_threads_change) {
  HERMES_RETURN_NOT_OK(settings->Register(
      "hermes.threads", Value::Int(defaults.threads),
      "worker threads for analytic statements (1 = sequential)",
      [](const Value& v) {
        if (v.AsInt() < 1 || v.AsInt() > 1024) {
          return Status::InvalidArgument(
              "hermes.threads must be an integer in [1, 1024], got " +
              v.ToString());
        }
        return Status::OK();
      },
      [hook = std::move(on_threads_change)](const Value& v) {
        if (!hook) return Status::OK();
        return hook(static_cast<size_t>(v.AsInt()));
      }));
  auto positive = [](const char* name) {
    return [name](const Value& v) {
      if (!(v.AsDouble() > 0.0)) {
        return Status::InvalidArgument(std::string(name) +
                                       " must be > 0, got " + v.ToString());
      }
      return Status::OK();
    };
  };
  HERMES_RETURN_NOT_OK(settings->Register(
      "hermes.sigma", Value::Double(defaults.sigma),
      "default S2T spatial bandwidth sigma when the statement omits it",
      positive("hermes.sigma")));
  HERMES_RETURN_NOT_OK(settings->Register(
      "hermes.epsilon", Value::Double(defaults.epsilon),
      "default S2T cluster radius epsilon when the statement omits it",
      positive("hermes.epsilon")));
  HERMES_RETURN_NOT_OK(settings->Register(
      "hermes.use_index", Value::Int(defaults.use_index),
      "voting engine: 1/on = pg3D-Rtree index probe, 0/off = naive sweep",
      [](const Value& v) {
        if (v.AsInt() != 0 && v.AsInt() != 1) {
          return Status::InvalidArgument(
              "hermes.use_index must be 0/1 (or off/on), got " +
              v.ToString());
        }
        return Status::OK();
      }));
  HERMES_RETURN_NOT_OK(settings->Register(
      "hermes.hot_index_budget", Value::Int(defaults.hot_index_budget),
      "bytes of in-memory hot-tier index snapshots per QUT tree "
      "(0 disables the hot tier)",
      [](const Value& v) {
        if (v.AsInt() < 0) {
          return Status::InvalidArgument(
              "hermes.hot_index_budget must be >= 0 bytes, got " +
              v.ToString());
        }
        return Status::OK();
      }));
  return Status::OK();
}

}  // namespace hermes::sql
