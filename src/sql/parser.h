#ifndef HERMES_SQL_PARSER_H_
#define HERMES_SQL_PARSER_H_

#include <array>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "sql/tokenizer.h"
#include "sql/value.h"

namespace hermes::sql {

/// \brief A scalar argument position: either a typed literal or a `$N`
/// prepared-statement placeholder, plus the source location for errors.
///
/// Numeric literals keep their spelled type: `4` parses as `Value::Int`,
/// `4.0` / `2e3` as `Value::Double` — so the settings registry can tell an
/// integral knob from a fractional one without re-inspecting text.
struct ScalarExpr {
  Value value;       ///< The literal (null while `param > 0`).
  int param = 0;     ///< 0 = literal; >= 1 = placeholder `$param`.
  size_t pos = 0;    ///< Byte offset in the statement text.
  std::string text;  ///< Raw token text (for "near 'tok'" errors).

  static ScalarExpr Literal(Value v, const Token& t) {
    ScalarExpr e;
    e.value = std::move(v);
    e.pos = t.position;
    e.text = t.text;
    return e;
  }
  static ScalarExpr Placeholder(const Token& t) {
    ScalarExpr e;
    e.param = t.param_index;
    e.pos = t.position;
    e.text = t.text;
    return e;
  }
};

/// \brief Parsed statement of the Hermes SQL dialect.
///
/// Supported forms (keywords case-insensitive; any scalar — and the MOD
/// position of a SELECT — may be a `$N` placeholder, bound later via
/// `Session::Prepare`):
///   CREATE MOD name;
///   DROP MOD name;
///   LOAD MOD name FROM 'file.csv';
///   INSERT INTO name VALUES (obj, t, x, y) [, (obj, t, x, y)]...;
///   SELECT STATS(D);                          -- D names a MOD (or `$N`)
///   SELECT RANGE(D, Wi, We);
///   SELECT S2T(D[, sigma[, eps]]);            -- defaults from settings
///   SELECT S2T_MEMBERS(D[, sigma[, eps]]);    -- one row per member
///   SELECT QUT(D, Wi, We, tau, delta, t, d, gamma);
///   SET hermes.<setting> = value;             -- number|'string'|on|off
///   SHOW hermes.<setting>; | SHOW ALL; | SHOW STATS;
///   SHOW SERVICE STATS;                       -- service-layer counters
///   FLUSH;                                    -- drain queued async ingest
///   CHECKPOINT;                               -- persist catalog + truncate WAL
struct Statement {
  enum class Kind {
    kCreateMod,
    kDropMod,
    kLoadMod,
    kInsert,
    kSelect,
    kSet,
    kShow,
    kFlush,
    kCheckpoint,
  };
  Kind kind = Kind::kSelect;
  std::string mod;       ///< Target MOD name (upper-cased).
  /// SELECT only: >= 1 when the MOD position is a `$N` placeholder (bound
  /// to a string value at execution); 0 when `mod` names it directly.
  int mod_param = 0;
  size_t mod_pos = 0;    ///< Byte offset of the SELECT MOD token.
  std::string path;      ///< LOAD source file.
  std::vector<std::array<ScalarExpr, 4>> rows;  ///< INSERT (obj,t,x,y) tuples.
  std::string function;  ///< SELECT function name.
  size_t function_pos = 0;  ///< Byte offset of the SELECT function token.
  std::vector<ScalarExpr> args;  ///< SELECT scalar arguments.
  std::string setting;   ///< SET/SHOW name, canonical lower-case
                         ///< ("hermes.threads"); SHOW also accepts the
                         ///< pseudo-names "all", "stats", and
                         ///< "service.stats" (spelled SERVICE STATS).
  size_t setting_pos = 0;   ///< Byte offset of the setting name token.
  ScalarExpr set_value;     ///< SET right-hand side.
  int num_params = 0;    ///< Highest `$N` placeholder index (0 = none).
};

/// Parses exactly one statement (trailing ';' optional).
StatusOr<Statement> ParseStatement(const std::string& sql);

/// Parses a ';'-separated script into statements. Empty statements
/// (stray ';' runs) are skipped.
StatusOr<std::vector<Statement>> ParseScript(const std::string& sql);

}  // namespace hermes::sql

#endif  // HERMES_SQL_PARSER_H_
