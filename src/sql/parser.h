#ifndef HERMES_SQL_PARSER_H_
#define HERMES_SQL_PARSER_H_

#include <array>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "sql/tokenizer.h"

namespace hermes::sql {

/// \brief Parsed statement of the Hermes SQL dialect.
///
/// Supported forms (keywords case-insensitive):
///   CREATE MOD name;
///   DROP MOD name;
///   LOAD MOD name FROM 'file.csv';
///   INSERT INTO name VALUES (obj, t, x, y) [, (obj, t, x, y)]...;
///   SELECT STATS(name);
///   SELECT RANGE(name, Wi, We);
///   SELECT S2T(name, sigma, eps);
///   SELECT QUT(name, Wi, We, tau, delta, t, d, gamma);
///   SET hermes.threads = N;
struct Statement {
  enum class Kind {
    kCreateMod,
    kDropMod,
    kLoadMod,
    kInsert,
    kSelect,
    kSet,
  };
  Kind kind = Kind::kSelect;
  std::string mod;                        ///< Target MOD name (upper-cased).
  std::string path;                       ///< LOAD source file.
  std::vector<std::array<double, 4>> rows;///< INSERT (obj, t, x, y) tuples.
  std::string function;                   ///< SELECT function name.
  std::vector<double> args;               ///< SELECT numeric arguments.
  std::string setting;                    ///< SET name, e.g. "HERMES.THREADS".
  double set_value = 0.0;                 ///< SET right-hand side.
};

/// Parses exactly one statement (trailing ';' optional).
StatusOr<Statement> ParseStatement(const std::string& sql);

/// Parses a ';'-separated script into statements.
StatusOr<std::vector<Statement>> ParseScript(const std::string& sql);

}  // namespace hermes::sql

#endif  // HERMES_SQL_PARSER_H_
