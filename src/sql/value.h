#ifndef HERMES_SQL_VALUE_H_
#define HERMES_SQL_VALUE_H_

#include <cstdint>
#include <cstdlib>
#include <string>
#include <variant>
#include <vector>

namespace hermes::sql {

/// \brief Runtime type of a `Value` (and the declared type of a `Column`).
///
/// `kNull` doubles as "untyped / mixed" when used as a column declaration
/// (e.g. the `value` column of `SHOW ALL`, which carries one datum per
/// registered setting in that setting's native type).
enum class ValueType {
  kNull = 0,
  kInt,
  kDouble,
  kString,
};

/// Human-readable name of a value type ("null", "int", "double", "string").
const char* ValueTypeName(ValueType type);

/// \brief A typed SQL datum: null, int64, double, or string.
///
/// `Value` is what executor paths emit and what prepared statements bind —
/// the embedded counterpart of a PostgreSQL `Datum`. Accessors are strict:
/// reading a value as the wrong type aborts (programming error, mirroring
/// `StatusOr`); `AsDouble()` additionally accepts ints (numeric widening,
/// the one promotion SQL arithmetic needs).
class Value {
 public:
  /// Default-constructed values are NULL.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.v_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.v_ = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.v_ = std::move(v);
    return out;
  }

  ValueType type() const { return static_cast<ValueType>(v_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  int64_t AsInt() const {
    if (type() != ValueType::kInt) std::abort();
    return std::get<int64_t>(v_);
  }
  double AsDouble() const {
    if (type() == ValueType::kInt) {
      return static_cast<double>(std::get<int64_t>(v_));
    }
    if (type() != ValueType::kDouble) std::abort();
    return std::get<double>(v_);
  }
  const std::string& AsString() const {
    if (type() != ValueType::kString) std::abort();
    return std::get<std::string>(v_);
  }

  /// Display form: "" for null, decimal ints, "%.4g" doubles, raw strings.
  std::string ToString() const;

  /// Exact equality: type and payload (Int(2) != Double(2.0)).
  bool operator==(const Value& o) const { return v_ == o.v_; }
  bool operator!=(const Value& o) const { return !(*this == o); }

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

/// \brief A result column: display name plus declared value type.
/// `ValueType::kNull` declares a mixed-type column (summary rows may mix
/// types regardless — the declaration describes the data rows).
struct Column {
  std::string name;
  ValueType type = ValueType::kString;

  Column() = default;
  Column(std::string n, ValueType t) : name(std::move(n)), type(t) {}
};

/// \brief Tabular result of a statement: typed columns + `Value` rows.
/// Tests and benches assert on the typed cells; `ToString()` renders the
/// aligned psql-style display form.
struct Table {
  std::vector<Column> columns;
  std::vector<std::vector<Value>> rows;

  std::string ToString() const;
};

}  // namespace hermes::sql

#endif  // HERMES_SQL_VALUE_H_
