#include "sql/executor.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "sql/query_functions.h"

namespace hermes::sql {

namespace {

/// Executor errors carry the statement location of the offending token,
/// same shape as tokenizer/parser diagnostics.
std::string At(size_t pos, const std::string& tok) {
  return ErrorLocation(pos, tok);
}

std::unique_ptr<RowCursor> MakeCursor(Table table) {
  return MakeTableCursor(std::move(table));
}

Table Ack(std::string status) { return AckTable(std::move(status)); }

}  // namespace

// ---------------------------------------------------------------------------
// Session: construction + registry
// ---------------------------------------------------------------------------

Session::Session(storage::Env* env, std::string data_dir)
    : data_dir_(std::move(data_dir)) {
  if (env == nullptr) {
    owned_env_ = storage::Env::NewMemEnv();
    env_ = owned_env_.get();
  } else {
    env_ = env;
  }
  RegisterSettings();
}

void Session::RegisterSettings() {
  // Registration of compile-time-known settings cannot fail; the (void)
  // cast acknowledges the Status. The knobs themselves are shared with
  // the service layer (`RegisterHermesSettings`); only the threads hook —
  // what *this* owner does when its parallelism changes — is ours:
  // lazily-built trees hold the old context, so drop them before the
  // shared context swap.
  (void)RegisterHermesSettings(
      &settings_, HermesSettingDefaults{}, [this](size_t n) {
        if (n != threads_) {
          threads_ = n;
          for (auto& [name, entry] : mods_) {
            entry.tree.reset();
            entry.tree_params.clear();
          }
          SwapExecContext(n, &exec_, &session_stats_);
        }
        return Status::OK();
      });
}

Status Session::RegisterStore(const std::string& name,
                              traj::TrajectoryStore store) {
  ModEntry entry;
  entry.store = std::move(store);
  mods_[CanonicalModName(name)] = std::move(entry);
  return Status::OK();
}

const traj::TrajectoryStore* Session::FindStore(
    const std::string& name) const {
  auto it = mods_.find(CanonicalModName(name));
  return it == mods_.end() ? nullptr : &it->second.store;
}

StatusOr<Session::ModEntry*> Session::FindMod(const std::string& name) {
  auto it = mods_.find(name);
  if (it == mods_.end()) return Status::NotFound("no MOD named " + name);
  return &it->second;
}

// ---------------------------------------------------------------------------
// Session: entry points
// ---------------------------------------------------------------------------

StatusOr<Table> Session::Execute(const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<RowCursor> cursor,
                          ExecuteCursor(sql));
  return cursor->ToTable();
}

StatusOr<std::unique_ptr<RowCursor>> Session::ExecuteCursor(
    const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.num_params > 0) {
    return Status::InvalidArgument(
        "statement has $N placeholders; use Session::Prepare and Bind");
  }
  return ExecuteStatement(stmt, {});
}

StatusOr<PreparedStatement> Session::Prepare(const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  // The runner pins this session (it is neither movable nor copyable),
  // so the handle stays valid for the session's whole life.
  return PreparedStatement(
      std::move(stmt), [this](const Statement& s, const std::vector<Value>& b) {
        return ExecuteStatement(s, b);
      });
}

StatusOr<Table> Session::ExecuteScript(const std::string& sql) {
  return RunScript(
      sql, [this](const Statement& stmt) { return ExecuteStatement(stmt, {}); });
}

// ---------------------------------------------------------------------------
// Session: statement dispatch
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<RowCursor>> Session::ExecuteStatement(
    const Statement& stmt, const std::vector<Value>& binds) {
  switch (stmt.kind) {
    case Statement::Kind::kCreateMod: {
      if (mods_.count(stmt.mod) > 0) {
        return Status::AlreadyExists("MOD " + stmt.mod + " exists");
      }
      mods_[stmt.mod] = ModEntry{};
      return MakeCursor(Ack("CREATE MOD " + stmt.mod));
    }
    case Statement::Kind::kDropMod: {
      if (mods_.erase(stmt.mod) == 0) {
        return Status::NotFound("no MOD named " + stmt.mod);
      }
      return MakeCursor(Ack("DROP MOD " + stmt.mod));
    }
    case Statement::Kind::kLoadMod: {
      auto [it, inserted] = mods_.try_emplace(stmt.mod);
      Status load = it->second.store.LoadCsv(stmt.path);
      if (!load.ok()) {
        // A failed load must not leave a phantom empty MOD behind.
        if (inserted) mods_.erase(it);
        return load;
      }
      it->second.tree.reset();
      Table table;
      table.columns = {{"status", ValueType::kString},
                       {"trajectories", ValueType::kInt},
                       {"points", ValueType::kInt}};
      table.rows = {
          {Value::Str("LOAD " + stmt.mod),
           Value::Int(static_cast<int64_t>(it->second.store.NumTrajectories())),
           Value::Int(static_cast<int64_t>(it->second.store.NumPoints()))}};
      return MakeCursor(std::move(table));
    }
    case Statement::Kind::kInsert: {
      HERMES_ASSIGN_OR_RETURN(ModEntry * entry, FindMod(stmt.mod));
      // One trajectory per object id (the service session shares this row
      // evaluation, but queues the result instead of adding inline).
      HERMES_ASSIGN_OR_RETURN(std::vector<traj::Trajectory> batch,
                              BuildInsertTrajectories(stmt, binds));
      size_t added = 0;
      for (traj::Trajectory& t : batch) {
        auto r = entry->store.Add(std::move(t));
        if (!r.ok()) return r.status();
        ++added;
      }
      entry->tree.reset();
      Table table;
      table.columns = {{"status", ValueType::kString},
                       {"trajectories_added", ValueType::kInt}};
      table.rows = {{Value::Str("INSERT " + stmt.mod),
                     Value::Int(static_cast<int64_t>(added))}};
      return MakeCursor(std::move(table));
    }
    case Statement::Kind::kSet: {
      HERMES_ASSIGN_OR_RETURN(Value v, EvalScalar(stmt.set_value, binds));
      Status st = settings_.Set(stmt.setting, std::move(v));
      if (!st.ok()) {
        return Status(st.code(), st.message() +
                                     At(stmt.setting_pos, stmt.setting));
      }
      // Echo the stored (coerced) value, not the literal spelling.
      HERMES_ASSIGN_OR_RETURN(Value stored, settings_.Get(stmt.setting));
      return MakeCursor(
          Ack("SET " + stmt.setting + " = " + stored.ToString()));
    }
    case Statement::Kind::kShow:
      return ExecuteShow(stmt);
    case Statement::Kind::kCheckpoint:
      // Durability is a service-layer concern (mirrors SHOW SERVICE
      // STATS): embedded sessions have no WAL to checkpoint.
      return Status::NotSupported(
          "CHECKPOINT is only available through a service session");
    case Statement::Kind::kFlush:
      // Embedded sessions ingest synchronously — every INSERT already
      // applied before its ack — so FLUSH acknowledges trivially. The
      // service session overrides this with a real queue drain.
      return MakeCursor(Ack("FLUSH"));
    case Statement::Kind::kSelect:
      return ExecuteSelect(stmt, binds);
  }
  return Status::Internal("unreachable");
}

StatusOr<std::unique_ptr<RowCursor>> Session::ExecuteShow(
    const Statement& stmt) {
  if (stmt.setting == "service.stats") {
    return Status::NotSupported(
        "SHOW SERVICE STATS needs a service session "
        "(service::Server::Connect); this is an embedded sql::Session");
  }
  if (stmt.setting == "stats") {
    Table table = PhaseStatsTable(session_stats_, exec_.get());
    // Hot/cold tier counters ride along after the phase timings, summed
    // over every built tree (counter value in the total_us column).
    core::HotTierStats tier;
    for (const auto& [name, entry] : mods_) {
      if (entry.tree != nullptr) {
        AccumulateHotTierStats(entry.tree->hot_stats(), &tier);
      }
    }
    AppendHotTierRows(tier, &table);
    return MakeCursor(std::move(table));
  }
  HERMES_ASSIGN_OR_RETURN(Table table, SettingsShowTable(settings_, stmt));
  return MakeCursor(std::move(table));
}

// ---------------------------------------------------------------------------
// Session: SELECT functions
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<RowCursor>> Session::ExecuteSelect(
    const Statement& stmt, const std::vector<Value>& binds) {
  // When the MOD position itself was a `$N`, its binding names the
  // dataset (shared resolution with the service session).
  HERMES_ASSIGN_OR_RETURN(std::string mod, ResolveSelectModName(stmt, binds));
  HERMES_ASSIGN_OR_RETURN(ModEntry * entry, FindMod(mod));
  auto at_fn = [&stmt] { return At(stmt.function_pos, stmt.function); };

  // Evaluates all scalar arguments up front (they are few and cheap);
  // streaming applies to result rows, not inputs.
  std::vector<double> args;
  args.reserve(stmt.args.size());
  for (const auto& arg : stmt.args) {
    HERMES_ASSIGN_OR_RETURN(double v, EvalNumber(arg, binds));
    args.push_back(v);
  }

  if (stmt.function == "QUT") {
    if (args.size() != 7) {
      return Status::InvalidArgument(
          "QUT(D, Wi, We, tau, delta, t, d, gamma) takes 7 numbers" +
          at_fn());
    }
    const double wi = args[0];
    const double we = args[1];
    const std::vector<double> tree_params(args.begin() + 2, args.end());
    if (entry->tree == nullptr || entry->tree_params != tree_params) {
      const core::ReTraTreeParams params = MakeQutTreeParams(tree_params);
      const std::string dir =
          data_dir_ + "/tree_" + std::to_string(tree_seq_++);
      HERMES_ASSIGN_OR_RETURN(
          entry->tree, core::ReTraTree::Open(env_, dir, params, exec_.get()));
      HERMES_RETURN_NOT_OK(
          entry->tree->InsertStore(entry->store, exec_.get()));
      entry->tree_params = tree_params;
      // Same coverage as the S2T path: without a live context (which
      // records for itself) the fresh tree's cumulative S2T timings — and
      // the batch-ingest phase split — are exactly this build's; archive
      // them for SHOW STATS.
      if (exec_ == nullptr) {
        entry->tree->stats().s2t_timings.ExportTo(&session_stats_);
        session_stats_.RecordPhaseUs("ingest_split",
                                     entry->tree->stats().ingest_split_us);
        session_stats_.RecordPhaseUs("ingest_apply",
                                     entry->tree->stats().ingest_apply_us);
      }
    }
    // The budget knob applies on every query, not just at build time, so
    // `SET hermes.hot_index_budget = 0` cold-disables an existing tree.
    entry->tree->SetHotIndexBudget(static_cast<size_t>(
        settings_.Get("hermes.hot_index_budget")->AsInt()));
    return QutQuery(entry->tree.get(), wi, we, &session_stats_);
  }

  // Everything else evaluates through the shared query functions — the
  // same code path a service ClientSession runs over its snapshots. The
  // embedded session's store outlives its cursors by contract, so a
  // non-owning handle suffices.
  QueryEnv env;
  env.store = BorrowStore(&entry->store);
  env.exec = exec_.get();
  env.session_stats = &session_stats_;
  env.default_sigma = settings_.Get("hermes.sigma")->AsDouble();
  env.default_epsilon = settings_.Get("hermes.epsilon")->AsDouble();
  env.use_index = settings_.Get("hermes.use_index")->AsInt() != 0;
  return EvalSelectFunction(stmt.function, args, env, at_fn());
}

}  // namespace hermes::sql
