#include "sql/executor.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <utility>

#include "baselines/convoys.h"
#include "baselines/toptics.h"
#include "baselines/traclus.h"
#include "core/s2t_clustering.h"

namespace hermes::sql {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Executor errors carry the statement location of the offending token,
/// same shape as tokenizer/parser diagnostics.
std::string At(size_t pos, const std::string& tok) {
  return ErrorLocation(pos, tok);
}

/// Resolves a scalar: the literal itself, or the bound value of `$N`.
StatusOr<Value> EvalScalar(const ScalarExpr& e,
                           const std::vector<Value>& binds) {
  if (e.param == 0) return e.value;
  if (e.param > static_cast<int>(binds.size())) {
    return Status::InvalidArgument("parameter $" + std::to_string(e.param) +
                                   " not bound" + At(e.pos, e.text));
  }
  return binds[e.param - 1];
}

/// Resolves a scalar that must be numeric, widening ints to double.
StatusOr<double> EvalNumber(const ScalarExpr& e,
                            const std::vector<Value>& binds) {
  HERMES_ASSIGN_OR_RETURN(Value v, EvalScalar(e, binds));
  if (!v.is_numeric()) {
    return Status::InvalidArgument(
        std::string("expected a number, got ") + ValueTypeName(v.type()) +
        At(e.pos, e.text));
  }
  return v.AsDouble();
}

std::unique_ptr<RowCursor> MakeCursor(Table table) {
  return std::make_unique<TableCursor>(std::move(table));
}

/// Single-column acknowledgment table ("CREATE MOD X", ...).
Table Ack(std::string status) {
  Table table;
  table.columns = {{"status", ValueType::kString}};
  table.rows = {{Value::Str(std::move(status))}};
  return table;
}

}  // namespace

// ---------------------------------------------------------------------------
// PreparedStatement
// ---------------------------------------------------------------------------

PreparedStatement::PreparedStatement(Session* session, Statement stmt)
    : session_(session),
      stmt_(std::move(stmt)),
      binds_(static_cast<size_t>(stmt_.num_params)),
      bound_(static_cast<size_t>(stmt_.num_params), false) {}

Status PreparedStatement::Bind(int index, Value v) {
  if (index < 1 || index > stmt_.num_params) {
    return Status::InvalidArgument(
        "bind index $" + std::to_string(index) + " out of range; statement "
        "has " + std::to_string(stmt_.num_params) + " parameter(s)");
  }
  binds_[index - 1] = std::move(v);
  bound_[index - 1] = true;
  return Status::OK();
}

StatusOr<std::unique_ptr<RowCursor>> PreparedStatement::ExecuteCursor() {
  for (size_t i = 0; i < bound_.size(); ++i) {
    if (!bound_[i]) {
      return Status::InvalidArgument("parameter $" + std::to_string(i + 1) +
                                     " not bound");
    }
  }
  return session_->ExecuteStatement(stmt_, binds_);
}

StatusOr<Table> PreparedStatement::Execute() {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<RowCursor> cursor, ExecuteCursor());
  return cursor->ToTable();
}

// ---------------------------------------------------------------------------
// Session: construction + registry
// ---------------------------------------------------------------------------

Session::Session(storage::Env* env, std::string data_dir)
    : data_dir_(std::move(data_dir)) {
  if (env == nullptr) {
    owned_env_ = storage::Env::NewMemEnv();
    env_ = owned_env_.get();
  } else {
    env_ = env;
  }
  RegisterSettings();
}

void Session::RegisterSettings() {
  // Registration of compile-time-known settings cannot fail; the (void)
  // casts acknowledge the Status.
  (void)settings_.Register(
      "hermes.threads", Value::Int(1),
      "worker threads for analytic statements (1 = sequential)",
      [](const Value& v) {
        if (v.AsInt() < 1 || v.AsInt() > 1024) {
          return Status::InvalidArgument(
              "hermes.threads must be an integer in [1, 1024], got " +
              v.ToString());
        }
        return Status::OK();
      },
      [this](const Value& v) {
        const auto n = static_cast<size_t>(v.AsInt());
        if (n != threads_) {
          threads_ = n;
          // A context's thread count is fixed at construction; changing
          // the setting swaps in a fresh context (and pool) for later
          // statements. Lazily-built trees hold the old context, so drop
          // them too. The retiring context's phase timings fold into the
          // session archive so SHOW STATS keeps accumulating.
          for (auto& [name, entry] : mods_) {
            entry.tree.reset();
            entry.tree_params.clear();
          }
          if (exec_ != nullptr) {
            for (const auto& [phase, us] : exec_->stats().PhaseTimings()) {
              session_stats_.RecordPhaseUs(phase, us);
            }
          }
          exec_ = threads_ > 1 ? std::make_unique<exec::ExecContext>(threads_)
                               : nullptr;
        }
        return Status::OK();
      });
  auto positive = [](const char* name) {
    return [name](const Value& v) {
      if (!(v.AsDouble() > 0.0)) {
        return Status::InvalidArgument(std::string(name) +
                                       " must be > 0, got " + v.ToString());
      }
      return Status::OK();
    };
  };
  (void)settings_.Register(
      "hermes.sigma", Value::Double(100.0),
      "default S2T spatial bandwidth sigma when the statement omits it",
      positive("hermes.sigma"));
  (void)settings_.Register(
      "hermes.epsilon", Value::Double(200.0),
      "default S2T cluster radius epsilon when the statement omits it",
      positive("hermes.epsilon"));
  (void)settings_.Register(
      "hermes.use_index", Value::Int(1),
      "voting engine: 1/on = pg3D-Rtree index probe, 0/off = naive sweep",
      [](const Value& v) {
        if (v.AsInt() != 0 && v.AsInt() != 1) {
          return Status::InvalidArgument(
              "hermes.use_index must be 0/1 (or off/on), got " +
              v.ToString());
        }
        return Status::OK();
      });
}

Status Session::RegisterStore(const std::string& name,
                              traj::TrajectoryStore store) {
  std::string key = name;
  for (char& c : key) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  ModEntry entry;
  entry.store = std::move(store);
  mods_[key] = std::move(entry);
  return Status::OK();
}

const traj::TrajectoryStore* Session::FindStore(
    const std::string& name) const {
  std::string key = name;
  for (char& c : key) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  auto it = mods_.find(key);
  return it == mods_.end() ? nullptr : &it->second.store;
}

StatusOr<Session::ModEntry*> Session::FindMod(const std::string& name) {
  auto it = mods_.find(name);
  if (it == mods_.end()) return Status::NotFound("no MOD named " + name);
  return &it->second;
}

// ---------------------------------------------------------------------------
// Session: entry points
// ---------------------------------------------------------------------------

StatusOr<Table> Session::Execute(const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<RowCursor> cursor,
                          ExecuteCursor(sql));
  return cursor->ToTable();
}

StatusOr<std::unique_ptr<RowCursor>> Session::ExecuteCursor(
    const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.num_params > 0) {
    return Status::InvalidArgument(
        "statement has $N placeholders; use Session::Prepare and Bind");
  }
  return ExecuteStatement(stmt, {});
}

StatusOr<PreparedStatement> Session::Prepare(const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return PreparedStatement(this, std::move(stmt));
}

StatusOr<Table> Session::ExecuteScript(const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseScript(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty script");
  Table last;
  for (size_t k = 0; k < stmts.size(); ++k) {
    auto prefix = [&] { return "statement " + std::to_string(k + 1) + ": "; };
    if (stmts[k].num_params > 0) {
      return Status::InvalidArgument(
          prefix() + "script statements cannot carry $N placeholders");
    }
    auto cursor = ExecuteStatement(stmts[k], {});
    if (!cursor.ok()) {
      return Status(cursor.status().code(),
                    prefix() + cursor.status().message());
    }
    auto table = (*cursor)->ToTable();
    if (!table.ok()) {
      return Status(table.status().code(),
                    prefix() + table.status().message());
    }
    last = std::move(*table);
  }
  return last;
}

// ---------------------------------------------------------------------------
// Session: statement dispatch
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<RowCursor>> Session::ExecuteStatement(
    const Statement& stmt, const std::vector<Value>& binds) {
  switch (stmt.kind) {
    case Statement::Kind::kCreateMod: {
      if (mods_.count(stmt.mod) > 0) {
        return Status::AlreadyExists("MOD " + stmt.mod + " exists");
      }
      mods_[stmt.mod] = ModEntry{};
      return MakeCursor(Ack("CREATE MOD " + stmt.mod));
    }
    case Statement::Kind::kDropMod: {
      if (mods_.erase(stmt.mod) == 0) {
        return Status::NotFound("no MOD named " + stmt.mod);
      }
      return MakeCursor(Ack("DROP MOD " + stmt.mod));
    }
    case Statement::Kind::kLoadMod: {
      auto [it, inserted] = mods_.try_emplace(stmt.mod);
      Status load = it->second.store.LoadCsv(stmt.path);
      if (!load.ok()) {
        // A failed load must not leave a phantom empty MOD behind.
        if (inserted) mods_.erase(it);
        return load;
      }
      it->second.tree.reset();
      Table table;
      table.columns = {{"status", ValueType::kString},
                       {"trajectories", ValueType::kInt},
                       {"points", ValueType::kInt}};
      table.rows = {
          {Value::Str("LOAD " + stmt.mod),
           Value::Int(static_cast<int64_t>(it->second.store.NumTrajectories())),
           Value::Int(static_cast<int64_t>(it->second.store.NumPoints()))}};
      return MakeCursor(std::move(table));
    }
    case Statement::Kind::kInsert: {
      HERMES_ASSIGN_OR_RETURN(ModEntry * entry, FindMod(stmt.mod));
      // Group rows by object id; each group extends/creates a trajectory.
      // For simplicity each INSERT materializes one trajectory per object.
      std::map<uint64_t, traj::Trajectory> builders;
      for (const auto& row : stmt.rows) {
        std::array<double, 4> cell{};
        for (int k = 0; k < 4; ++k) {
          HERMES_ASSIGN_OR_RETURN(cell[k], EvalNumber(row[k], binds));
        }
        const auto obj = static_cast<traj::ObjectId>(cell[0]);
        auto [bit, fresh] = builders.try_emplace(obj, traj::Trajectory(obj));
        HERMES_RETURN_NOT_OK(bit->second.Append({cell[2], cell[3], cell[1]}));
      }
      size_t added = 0;
      for (auto& [obj, t] : builders) {
        auto r = entry->store.Add(std::move(t));
        if (!r.ok()) return r.status();
        ++added;
      }
      entry->tree.reset();
      Table table;
      table.columns = {{"status", ValueType::kString},
                       {"trajectories_added", ValueType::kInt}};
      table.rows = {{Value::Str("INSERT " + stmt.mod),
                     Value::Int(static_cast<int64_t>(added))}};
      return MakeCursor(std::move(table));
    }
    case Statement::Kind::kSet: {
      HERMES_ASSIGN_OR_RETURN(Value v, EvalScalar(stmt.set_value, binds));
      Status st = settings_.Set(stmt.setting, std::move(v));
      if (!st.ok()) {
        return Status(st.code(), st.message() +
                                     At(stmt.setting_pos, stmt.setting));
      }
      // Echo the stored (coerced) value, not the literal spelling.
      HERMES_ASSIGN_OR_RETURN(Value stored, settings_.Get(stmt.setting));
      return MakeCursor(
          Ack("SET " + stmt.setting + " = " + stored.ToString()));
    }
    case Statement::Kind::kShow:
      return ExecuteShow(stmt);
    case Statement::Kind::kSelect:
      return ExecuteSelect(stmt, binds);
  }
  return Status::Internal("unreachable");
}

StatusOr<std::unique_ptr<RowCursor>> Session::ExecuteShow(
    const Statement& stmt) {
  if (stmt.setting == "stats") {
    // Session-accumulated stats plus the live exec context's, merged.
    std::map<std::string, int64_t> merged = session_stats_.PhaseTimings();
    if (exec_ != nullptr) {
      for (const auto& [phase, us] : exec_->stats().PhaseTimings()) {
        merged[phase] += us;
      }
    }
    Table table;
    table.columns = {{"phase", ValueType::kString},
                     {"total_us", ValueType::kInt}};
    for (const auto& [phase, us] : merged) {
      table.rows.push_back({Value::Str(phase), Value::Int(us)});
    }
    return MakeCursor(std::move(table));
  }

  Table table;
  table.columns = {{"name", ValueType::kString},
                   {"value", ValueType::kNull},  // Native type per setting.
                   {"type", ValueType::kString},
                   {"description", ValueType::kString}};
  auto row = [](const Settings::Setting& s) {
    return std::vector<Value>{Value::Str(s.name), s.value,
                              Value::Str(ValueTypeName(s.type())),
                              Value::Str(s.description)};
  };
  if (stmt.setting == "all") {
    for (const Settings::Setting* s : settings_.All()) {
      table.rows.push_back(row(*s));
    }
    return MakeCursor(std::move(table));
  }
  const Settings::Setting* s = settings_.Find(stmt.setting);
  if (s == nullptr) {
    return Status::NotSupported("unrecognized setting " + stmt.setting +
                                At(stmt.setting_pos, stmt.setting));
  }
  table.rows.push_back(row(*s));
  return MakeCursor(std::move(table));
}

// ---------------------------------------------------------------------------
// Session: SELECT functions
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<RowCursor>> Session::ExecuteSelect(
    const Statement& stmt, const std::vector<Value>& binds) {
  std::string mod = stmt.mod;
  if (stmt.mod_param > 0) {
    // The MOD position itself was a `$N`; its binding names the dataset.
    const Value& v = binds[stmt.mod_param - 1];
    if (v.type() != ValueType::kString) {
      return Status::InvalidArgument(
          "MOD placeholder $" + std::to_string(stmt.mod_param) +
          " must be bound to a string, got " + ValueTypeName(v.type()) +
          At(stmt.mod_pos, "$" + std::to_string(stmt.mod_param)));
    }
    mod = v.AsString();
    for (char& c : mod) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  HERMES_ASSIGN_OR_RETURN(ModEntry * entry, FindMod(mod));
  auto at_fn = [&stmt] { return At(stmt.function_pos, stmt.function); };

  // Evaluates all scalar arguments up front (they are few and cheap);
  // streaming applies to result rows, not inputs.
  std::vector<double> args;
  args.reserve(stmt.args.size());
  for (const auto& arg : stmt.args) {
    HERMES_ASSIGN_OR_RETURN(double v, EvalNumber(arg, binds));
    args.push_back(v);
  }

  if (stmt.function == "STATS") {
    const auto [t0, t1] = entry->store.TimeDomain();
    const geom::Mbb3D b = entry->store.Bounds();
    Table table;
    table.columns = {{"trajectories", ValueType::kInt},
                     {"points", ValueType::kInt},
                     {"segments", ValueType::kInt},
                     {"t_min", ValueType::kDouble},
                     {"t_max", ValueType::kDouble},
                     {"x_min", ValueType::kDouble},
                     {"x_max", ValueType::kDouble},
                     {"y_min", ValueType::kDouble},
                     {"y_max", ValueType::kDouble}};
    table.rows = {
        {Value::Int(static_cast<int64_t>(entry->store.NumTrajectories())),
         Value::Int(static_cast<int64_t>(entry->store.NumPoints())),
         Value::Int(static_cast<int64_t>(entry->store.NumSegments())),
         Value::Double(t0), Value::Double(t1), Value::Double(b.min_x),
         Value::Double(b.max_x), Value::Double(b.min_y),
         Value::Double(b.max_y)}};
    return MakeCursor(std::move(table));
  }

  if (stmt.function == "RANGE") {
    if (args.size() != 2) {
      return Status::InvalidArgument("RANGE(D, Wi, We) takes 2 numbers" +
                                     at_fn());
    }
    const double wi = args[0];
    const double we = args[1];
    if (we <= wi) {
      return Status::InvalidArgument("empty window" + at_fn());
    }
    // Streams one row per qualifying trajectory; the slice happens in
    // Next(), so a caller reading k rows slices only ~k trajectories.
    const traj::TrajectoryStore* store = &entry->store;
    size_t idx = 0;
    GeneratorCursor::Generator gen =
        [store, wi, we, idx](std::vector<Value>* row) mutable
        -> StatusOr<bool> {
      const auto& trajs = store->trajectories();
      while (idx < trajs.size()) {
        const traj::Trajectory& t = trajs[idx++];
        const traj::Trajectory sliced = t.Slice(wi, we);
        if (sliced.size() >= 2) {
          *row = {Value::Int(static_cast<int64_t>(t.object_id())),
                  Value::Int(static_cast<int64_t>(sliced.size()))};
          return true;
        }
      }
      return false;
    };
    return std::unique_ptr<RowCursor>(std::make_unique<GeneratorCursor>(
        std::vector<Column>{{"object_id", ValueType::kInt},
                            {"points_in_window", ValueType::kInt}},
        std::move(gen)));
  }

  if (stmt.function == "S2T" || stmt.function == "S2T_MEMBERS") {
    if (args.size() > 2) {
      return Status::InvalidArgument(
          stmt.function + "(D[, sigma[, eps]]) takes at most 2 numbers" +
          at_fn());
    }
    // Trailing args omitted -> session defaults (SET hermes.sigma/...).
    const double sigma =
        args.size() >= 1 ? args[0] : settings_.Get("hermes.sigma")->AsDouble();
    const double eps = args.size() >= 2
                           ? args[1]
                           : settings_.Get("hermes.epsilon")->AsDouble();
    core::S2TParams params;
    params.SetSigma(sigma).SetEpsilon(eps);
    params.use_index = settings_.Get("hermes.use_index")->AsInt() != 0;
    core::S2TClustering s2t(params);
    HERMES_ASSIGN_OR_RETURN(core::S2TResult result,
                            s2t.Run(entry->store, exec_.get()));
    // A live context records the s2t_* phases itself (core::RunPhases);
    // exporting here too would double-count them in SHOW STATS.
    if (exec_ == nullptr) result.timings.ExportTo(&session_stats_);

    if (stmt.function == "S2T") {
      Table table;
      table.columns = {{"cluster_id", ValueType::kInt},
                       {"size", ValueType::kInt},
                       {"rep_object", ValueType::kInt},
                       {"start", ValueType::kDouble},
                       {"end", ValueType::kDouble}};
      for (size_t ci = 0; ci < result.clustering.clusters.size(); ++ci) {
        const auto& c = result.clustering.clusters[ci];
        const auto& rep = result.sub_trajectories[c.representative];
        table.rows.push_back(
            {Value::Int(static_cast<int64_t>(ci)),
             Value::Int(static_cast<int64_t>(c.members.size())),
             Value::Int(static_cast<int64_t>(rep.object_id)),
             Value::Double(rep.StartTime()), Value::Double(rep.EndTime())});
      }
      table.rows.push_back(
          {Value::Str("outliers"),
           Value::Int(static_cast<int64_t>(result.clustering.outliers.size())),
           Value::Null(), Value::Null(), Value::Null()});
      return MakeCursor(std::move(table));
    }

    // S2T_MEMBERS: one row per cluster member (clusters in order), then
    // one per outlier with a NULL cluster_id. The clustering ran eagerly
    // above (it is the dominant cost); rows materialize on demand.
    struct MembersState {
      core::S2TResult result;
      size_t ci = 0, mi = 0, oi = 0;
    };
    auto state = std::make_shared<MembersState>();
    state->result = std::move(result);
    GeneratorCursor::Generator gen =
        [state](std::vector<Value>* row) -> StatusOr<bool> {
      const auto& r = state->result;
      auto fill = [&](Value cluster_id, size_t sub_index) {
        const traj::SubTrajectory& sub = r.sub_trajectories[sub_index];
        *row = {std::move(cluster_id),
                Value::Int(static_cast<int64_t>(sub.object_id)),
                Value::Double(sub.StartTime()), Value::Double(sub.EndTime()),
                Value::Int(static_cast<int64_t>(sub.points.size()))};
      };
      while (state->ci < r.clustering.clusters.size()) {
        const auto& c = r.clustering.clusters[state->ci];
        if (state->mi < c.members.size()) {
          fill(Value::Int(static_cast<int64_t>(state->ci)),
               c.members[state->mi++]);
          return true;
        }
        ++state->ci;
        state->mi = 0;
      }
      if (state->oi < r.clustering.outliers.size()) {
        fill(Value::Null(), r.clustering.outliers[state->oi++]);
        return true;
      }
      return false;
    };
    return std::unique_ptr<RowCursor>(std::make_unique<GeneratorCursor>(
        std::vector<Column>{{"cluster_id", ValueType::kInt},
                            {"object_id", ValueType::kInt},
                            {"start", ValueType::kDouble},
                            {"end", ValueType::kDouble},
                            {"points", ValueType::kInt}},
        std::move(gen)));
  }

  if (stmt.function == "QUT") {
    if (args.size() != 7) {
      return Status::InvalidArgument(
          "QUT(D, Wi, We, tau, delta, t, d, gamma) takes 7 numbers" +
          at_fn());
    }
    const double wi = args[0];
    const double we = args[1];
    const std::vector<double> tree_params(args.begin() + 2, args.end());
    if (entry->tree == nullptr || entry->tree_params != tree_params) {
      core::ReTraTreeParams params;
      params.tau = tree_params[0];
      params.delta = tree_params[1];
      params.t_align = tree_params[2];
      params.d_assign = tree_params[3];
      params.gamma = static_cast<size_t>(tree_params[4]);
      params.s2t.SetSigma(params.d_assign).SetEpsilon(params.d_assign);
      const std::string dir =
          data_dir_ + "/tree_" + std::to_string(tree_seq_++);
      HERMES_ASSIGN_OR_RETURN(
          entry->tree, core::ReTraTree::Open(env_, dir, params, exec_.get()));
      HERMES_RETURN_NOT_OK(
          entry->tree->InsertStore(entry->store, exec_.get()));
      entry->tree_params = tree_params;
      // Same coverage as the S2T branch: without a live context (which
      // records for itself) the fresh tree's cumulative S2T timings — and
      // the batch-ingest phase split — are exactly this build's; archive
      // them for SHOW STATS.
      if (exec_ == nullptr) {
        entry->tree->stats().s2t_timings.ExportTo(&session_stats_);
        session_stats_.RecordPhaseUs("ingest_split",
                                     entry->tree->stats().ingest_split_us);
        session_stats_.RecordPhaseUs("ingest_apply",
                                     entry->tree->stats().ingest_apply_us);
      }
    }
    core::QuTClustering qut(entry->tree.get());
    const int64_t t0 = NowUs();
    HERMES_ASSIGN_OR_RETURN(core::QuTResult result, qut.Query(wi, we));
    session_stats_.RecordPhaseUs("qut_query", NowUs() - t0);
    Table table;
    table.columns = {{"cluster_id", ValueType::kInt},
                     {"pieces", ValueType::kInt},
                     {"members", ValueType::kInt},
                     {"start", ValueType::kDouble},
                     {"end", ValueType::kDouble}};
    for (size_t ci = 0; ci < result.clusters.size(); ++ci) {
      const auto& c = result.clusters[ci];
      table.rows.push_back(
          {Value::Int(static_cast<int64_t>(ci)),
           Value::Int(static_cast<int64_t>(c.representatives.size())),
           Value::Int(static_cast<int64_t>(c.members.size())),
           Value::Double(c.StartTime()), Value::Double(c.EndTime())});
    }
    table.rows.push_back(
        {Value::Str("outliers"), Value::Null(),
         Value::Int(static_cast<int64_t>(result.outliers.size())),
         Value::Double(wi), Value::Double(we)});
    return MakeCursor(std::move(table));
  }

  if (stmt.function == "TRACLUS") {
    if (args.size() != 2) {
      return Status::InvalidArgument(
          "TRACLUS(D, eps, min_lns) takes 2 numbers" + at_fn());
    }
    baselines::TraclusParams params;
    params.eps = args[0];
    params.min_lns = static_cast<size_t>(args[1]);
    const baselines::TraclusResult result =
        baselines::RunTraclus(entry->store, params);
    Table table;
    table.columns = {{"cluster_id", ValueType::kInt},
                     {"segments", ValueType::kInt},
                     {"trajectories", ValueType::kInt},
                     {"rep_points", ValueType::kInt}};
    for (size_t ci = 0; ci < result.clusters.size(); ++ci) {
      const auto& c = result.clusters[ci];
      table.rows.push_back(
          {Value::Int(static_cast<int64_t>(ci)),
           Value::Int(static_cast<int64_t>(c.segment_indices.size())),
           Value::Int(static_cast<int64_t>(c.distinct_trajectories)),
           Value::Int(static_cast<int64_t>(c.representative.size()))});
    }
    table.rows.push_back(
        {Value::Str("noise"),
         Value::Int(static_cast<int64_t>(result.noise.size())), Value::Null(),
         Value::Null()});
    return MakeCursor(std::move(table));
  }

  if (stmt.function == "TOPTICS") {
    if (args.size() != 2) {
      return Status::InvalidArgument(
          "TOPTICS(D, eps, min_pts) takes 2 numbers" + at_fn());
    }
    baselines::TOpticsParams params;
    params.eps = args[0];
    params.min_pts = static_cast<size_t>(args[1]);
    const baselines::TOpticsResult result =
        baselines::RunTOptics(entry->store, params);
    Table table;
    table.columns = {{"cluster_id", ValueType::kInt},
                     {"trajectories", ValueType::kInt}};
    std::vector<size_t> sizes(result.num_clusters, 0);
    size_t noise = 0;
    for (int label : result.labels) {
      if (label >= 0) {
        ++sizes[label];
      } else {
        ++noise;
      }
    }
    for (size_t ci = 0; ci < sizes.size(); ++ci) {
      table.rows.push_back({Value::Int(static_cast<int64_t>(ci)),
                            Value::Int(static_cast<int64_t>(sizes[ci]))});
    }
    table.rows.push_back(
        {Value::Str("noise"), Value::Int(static_cast<int64_t>(noise))});
    return MakeCursor(std::move(table));
  }

  if (stmt.function == "CONVOYS") {
    if (args.size() != 4) {
      return Status::InvalidArgument(
          "CONVOYS(D, eps, m, k, dt) takes 4 numbers" + at_fn());
    }
    baselines::ConvoyParams params;
    params.eps = args[0];
    params.m = static_cast<size_t>(args[1]);
    params.k = static_cast<size_t>(args[2]);
    params.snapshot_dt = args[3];
    const auto convoys = baselines::DiscoverConvoys(entry->store, params);
    Table table;
    table.columns = {{"convoy_id", ValueType::kInt},
                     {"objects", ValueType::kInt},
                     {"start", ValueType::kDouble},
                     {"end", ValueType::kDouble}};
    for (size_t ci = 0; ci < convoys.size(); ++ci) {
      table.rows.push_back(
          {Value::Int(static_cast<int64_t>(ci)),
           Value::Int(static_cast<int64_t>(convoys[ci].objects.size())),
           Value::Double(convoys[ci].start_time),
           Value::Double(convoys[ci].end_time)});
    }
    return MakeCursor(std::move(table));
  }

  return Status::NotSupported("unknown function " + stmt.function + at_fn());
}

}  // namespace hermes::sql
