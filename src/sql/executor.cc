#include "sql/executor.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "baselines/convoys.h"
#include "baselines/toptics.h"
#include "baselines/traclus.h"
#include "core/s2t_clustering.h"

namespace hermes::sql {

namespace {
std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}
std::string Fmt(size_t v) { return std::to_string(v); }
}  // namespace

std::string Table::ToString() const {
  // Column widths.
  std::vector<size_t> widths(columns.size(), 0);
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto line = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      out << "| " << (c < cells.size() ? cells[c] : "");
      out << std::string(
          widths[c] - std::min(widths[c],
                               c < cells.size() ? cells[c].size() : 0),
          ' ');
      out << ' ';
    }
    out << "|\n";
  };
  line(columns);
  for (size_t c = 0; c < widths.size(); ++c) {
    out << "+" << std::string(widths[c] + 2, '-');
  }
  out << "+\n";
  for (const auto& row : rows) line(row);
  return out.str();
}

Session::Session(storage::Env* env, std::string data_dir)
    : data_dir_(std::move(data_dir)) {
  if (env == nullptr) {
    owned_env_ = storage::Env::NewMemEnv();
    env_ = owned_env_.get();
  } else {
    env_ = env;
  }
}

Status Session::RegisterStore(const std::string& name,
                              traj::TrajectoryStore store) {
  std::string key = name;
  for (char& c : key) c = static_cast<char>(std::toupper(c));
  ModEntry entry;
  entry.store = std::move(store);
  mods_[key] = std::move(entry);
  return Status::OK();
}

const traj::TrajectoryStore* Session::FindStore(
    const std::string& name) const {
  std::string key = name;
  for (char& c : key) c = static_cast<char>(std::toupper(c));
  auto it = mods_.find(key);
  return it == mods_.end() ? nullptr : &it->second.store;
}

StatusOr<Session::ModEntry*> Session::FindMod(const std::string& name) {
  auto it = mods_.find(name);
  if (it == mods_.end()) return Status::NotFound("no MOD named " + name);
  return &it->second;
}

StatusOr<Table> Session::Execute(const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return ExecuteStatement(stmt);
}

StatusOr<Table> Session::ExecuteScript(const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseScript(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty script");
  Table last;
  for (const auto& stmt : stmts) {
    HERMES_ASSIGN_OR_RETURN(last, ExecuteStatement(stmt));
  }
  return last;
}

StatusOr<Table> Session::ExecuteStatement(const Statement& stmt) {
  Table table;
  switch (stmt.kind) {
    case Statement::Kind::kCreateMod: {
      if (mods_.count(stmt.mod) > 0) {
        return Status::AlreadyExists("MOD " + stmt.mod + " exists");
      }
      mods_[stmt.mod] = ModEntry{};
      table.columns = {"status"};
      table.rows = {{"CREATE MOD " + stmt.mod}};
      return table;
    }
    case Statement::Kind::kDropMod: {
      if (mods_.erase(stmt.mod) == 0) {
        return Status::NotFound("no MOD named " + stmt.mod);
      }
      table.columns = {"status"};
      table.rows = {{"DROP MOD " + stmt.mod}};
      return table;
    }
    case Statement::Kind::kLoadMod: {
      auto [it, inserted] = mods_.try_emplace(stmt.mod);
      HERMES_RETURN_NOT_OK(it->second.store.LoadCsv(stmt.path));
      it->second.tree.reset();
      table.columns = {"status", "trajectories", "points"};
      table.rows = {{"LOAD " + stmt.mod,
                     Fmt(it->second.store.NumTrajectories()),
                     Fmt(it->second.store.NumPoints())}};
      return table;
    }
    case Statement::Kind::kInsert: {
      HERMES_ASSIGN_OR_RETURN(ModEntry * entry, FindMod(stmt.mod));
      // Group rows by object id; each group extends/creates a trajectory.
      // For simplicity each INSERT materializes one trajectory per object.
      std::map<uint64_t, traj::Trajectory> builders;
      for (const auto& row : stmt.rows) {
        const auto obj = static_cast<traj::ObjectId>(row[0]);
        auto [bit, fresh] = builders.try_emplace(obj, traj::Trajectory(obj));
        HERMES_RETURN_NOT_OK(bit->second.Append({row[2], row[3], row[1]}));
      }
      size_t added = 0;
      for (auto& [obj, t] : builders) {
        auto r = entry->store.Add(std::move(t));
        if (!r.ok()) return r.status();
        ++added;
      }
      entry->tree.reset();
      table.columns = {"status", "trajectories_added"};
      table.rows = {{"INSERT " + stmt.mod, Fmt(added)}};
      return table;
    }
    case Statement::Kind::kSet: {
      if (stmt.setting != "HERMES.THREADS") {
        return Status::NotSupported("unknown setting " + stmt.setting);
      }
      const double v = stmt.set_value;
      if (v < 1.0 || v != std::floor(v) || v > 1024.0) {
        return Status::InvalidArgument(
            "hermes.threads must be an integer in [1, 1024]");
      }
      const auto n = static_cast<size_t>(v);
      if (n != threads_) {
        threads_ = n;
        // A context's thread count is fixed at construction; changing the
        // setting swaps in a fresh context (and pool) for later statements.
        // Lazily-built trees hold the old context, so drop them too.
        for (auto& [name, entry] : mods_) {
          entry.tree.reset();
          entry.tree_params.clear();
        }
        exec_ = threads_ > 1 ? std::make_unique<exec::ExecContext>(threads_)
                             : nullptr;
      }
      table.columns = {"status"};
      table.rows = {{"SET HERMES.THREADS = " + std::to_string(n)}};
      return table;
    }
    case Statement::Kind::kSelect:
      return ExecuteSelect(stmt);
  }
  return Status::Internal("unreachable");
}

StatusOr<Table> Session::ExecuteSelect(const Statement& stmt) {
  HERMES_ASSIGN_OR_RETURN(ModEntry * entry, FindMod(stmt.mod));
  Table table;

  if (stmt.function == "STATS") {
    const auto [t0, t1] = entry->store.TimeDomain();
    const geom::Mbb3D b = entry->store.Bounds();
    table.columns = {"trajectories", "points", "segments", "t_min", "t_max",
                     "x_min", "x_max", "y_min", "y_max"};
    table.rows = {{Fmt(entry->store.NumTrajectories()),
                   Fmt(entry->store.NumPoints()),
                   Fmt(entry->store.NumSegments()), Fmt(t0), Fmt(t1),
                   Fmt(b.min_x), Fmt(b.max_x), Fmt(b.min_y), Fmt(b.max_y)}};
    return table;
  }

  if (stmt.function == "RANGE") {
    if (stmt.args.size() != 2) {
      return Status::InvalidArgument("RANGE(D, Wi, We) takes 2 numbers");
    }
    const double wi = stmt.args[0];
    const double we = stmt.args[1];
    if (we <= wi) return Status::InvalidArgument("empty window");
    table.columns = {"object_id", "points_in_window"};
    for (const auto& t : entry->store.trajectories()) {
      const traj::Trajectory sliced = t.Slice(wi, we);
      if (sliced.size() >= 2) {
        table.rows.push_back(
            {Fmt(static_cast<size_t>(t.object_id())), Fmt(sliced.size())});
      }
    }
    return table;
  }

  if (stmt.function == "S2T") {
    if (stmt.args.size() != 2) {
      return Status::InvalidArgument("S2T(D, sigma, eps) takes 2 numbers");
    }
    core::S2TParams params;
    params.SetSigma(stmt.args[0]).SetEpsilon(stmt.args[1]);
    core::S2TClustering s2t(params);
    HERMES_ASSIGN_OR_RETURN(core::S2TResult result,
                            s2t.Run(entry->store, exec_.get()));
    table.columns = {"cluster_id", "size", "rep_object", "start", "end"};
    for (size_t ci = 0; ci < result.clustering.clusters.size(); ++ci) {
      const auto& c = result.clustering.clusters[ci];
      const auto& rep = result.sub_trajectories[c.representative];
      table.rows.push_back({Fmt(ci), Fmt(c.members.size()),
                            Fmt(static_cast<size_t>(rep.object_id)),
                            Fmt(rep.StartTime()), Fmt(rep.EndTime())});
    }
    table.rows.push_back({"outliers", Fmt(result.clustering.outliers.size()),
                          "-", "-", "-"});
    return table;
  }

  if (stmt.function == "QUT") {
    if (stmt.args.size() != 7) {
      return Status::InvalidArgument(
          "QUT(D, Wi, We, tau, delta, t, d, gamma) takes 7 numbers");
    }
    const double wi = stmt.args[0];
    const double we = stmt.args[1];
    const std::vector<double> tree_params(stmt.args.begin() + 2,
                                          stmt.args.end());
    if (entry->tree == nullptr || entry->tree_params != tree_params) {
      core::ReTraTreeParams params;
      params.tau = tree_params[0];
      params.delta = tree_params[1];
      params.t_align = tree_params[2];
      params.d_assign = tree_params[3];
      params.gamma = static_cast<size_t>(tree_params[4]);
      params.s2t.SetSigma(params.d_assign).SetEpsilon(params.d_assign);
      const std::string dir =
          data_dir_ + "/tree_" + std::to_string(tree_seq_++);
      HERMES_ASSIGN_OR_RETURN(
          entry->tree, core::ReTraTree::Open(env_, dir, params, exec_.get()));
      HERMES_RETURN_NOT_OK(entry->tree->InsertStore(entry->store));
      entry->tree_params = tree_params;
    }
    core::QuTClustering qut(entry->tree.get());
    HERMES_ASSIGN_OR_RETURN(core::QuTResult result, qut.Query(wi, we));
    table.columns = {"cluster_id", "pieces", "members", "start", "end"};
    for (size_t ci = 0; ci < result.clusters.size(); ++ci) {
      const auto& c = result.clusters[ci];
      table.rows.push_back({Fmt(ci), Fmt(c.representatives.size()),
                            Fmt(c.members.size()), Fmt(c.StartTime()),
                            Fmt(c.EndTime())});
    }
    table.rows.push_back(
        {"outliers", "-", Fmt(result.outliers.size()), Fmt(wi), Fmt(we)});
    return table;
  }

  if (stmt.function == "TRACLUS") {
    if (stmt.args.size() != 2) {
      return Status::InvalidArgument(
          "TRACLUS(D, eps, min_lns) takes 2 numbers");
    }
    baselines::TraclusParams params;
    params.eps = stmt.args[0];
    params.min_lns = static_cast<size_t>(stmt.args[1]);
    const baselines::TraclusResult result =
        baselines::RunTraclus(entry->store, params);
    table.columns = {"cluster_id", "segments", "trajectories", "rep_points"};
    for (size_t ci = 0; ci < result.clusters.size(); ++ci) {
      const auto& c = result.clusters[ci];
      table.rows.push_back({Fmt(ci), Fmt(c.segment_indices.size()),
                            Fmt(c.distinct_trajectories),
                            Fmt(c.representative.size())});
    }
    table.rows.push_back({"noise", Fmt(result.noise.size()), "-", "-"});
    return table;
  }

  if (stmt.function == "TOPTICS") {
    if (stmt.args.size() != 2) {
      return Status::InvalidArgument(
          "TOPTICS(D, eps, min_pts) takes 2 numbers");
    }
    baselines::TOpticsParams params;
    params.eps = stmt.args[0];
    params.min_pts = static_cast<size_t>(stmt.args[1]);
    const baselines::TOpticsResult result =
        baselines::RunTOptics(entry->store, params);
    table.columns = {"cluster_id", "trajectories"};
    std::vector<size_t> sizes(result.num_clusters, 0);
    size_t noise = 0;
    for (int label : result.labels) {
      if (label >= 0) {
        ++sizes[label];
      } else {
        ++noise;
      }
    }
    for (size_t ci = 0; ci < sizes.size(); ++ci) {
      table.rows.push_back({Fmt(ci), Fmt(sizes[ci])});
    }
    table.rows.push_back({"noise", Fmt(noise)});
    return table;
  }

  if (stmt.function == "CONVOYS") {
    if (stmt.args.size() != 4) {
      return Status::InvalidArgument(
          "CONVOYS(D, eps, m, k, dt) takes 4 numbers");
    }
    baselines::ConvoyParams params;
    params.eps = stmt.args[0];
    params.m = static_cast<size_t>(stmt.args[1]);
    params.k = static_cast<size_t>(stmt.args[2]);
    params.snapshot_dt = stmt.args[3];
    const auto convoys = baselines::DiscoverConvoys(entry->store, params);
    table.columns = {"convoy_id", "objects", "start", "end"};
    for (size_t ci = 0; ci < convoys.size(); ++ci) {
      table.rows.push_back({Fmt(ci), Fmt(convoys[ci].objects.size()),
                            Fmt(convoys[ci].start_time),
                            Fmt(convoys[ci].end_time)});
    }
    return table;
  }

  return Status::NotSupported("unknown function " + stmt.function);
}

}  // namespace hermes::sql
