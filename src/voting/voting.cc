#include "voting/voting.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "common/mathutil.h"
#include "exec/parallel_for.h"
#include "geom/moving_point.h"
#include "rtree/str_bulk_load.h"

namespace hermes::voting {

double VotingResult::TotalVoting(traj::TrajectoryId tid) const {
  double s = 0.0;
  for (double v : votes[tid]) s += v;
  return s;
}

double VotingResult::MeanVoting(traj::TrajectoryId tid) const {
  if (votes[tid].empty()) return 0.0;
  return TotalVoting(tid) / static_cast<double>(votes[tid].size());
}

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Average synchronized distance between the moving point of `seg` and
/// trajectory `other`, over the overlap of their lifespans; +inf when the
/// overlap covers less than `min_overlap_ratio` of the segment's lifespan.
double SegmentTrajectoryDistance(const geom::Segment3D& seg,
                                 const traj::Trajectory& other,
                                 double min_overlap_ratio) {
  const double t0 = std::max(seg.a.t, other.StartTime());
  const double t1 = std::min(seg.b.t, other.EndTime());
  if (t0 >= t1) return std::numeric_limits<double>::infinity();
  const double seg_dur = seg.duration();
  if (seg_dur <= 0.0) return std::numeric_limits<double>::infinity();
  if ((t1 - t0) / seg_dur < min_overlap_ratio) {
    return std::numeric_limits<double>::infinity();
  }

  // Breakpoints: the other trajectory's sample times inside (t0, t1).
  const auto& samples = other.samples();
  auto it = std::lower_bound(
      samples.begin(), samples.end(), t0,
      [](const geom::Point3D& p, double v) { return p.t < v; });

  double integral = 0.0;
  double prev = t0;
  auto piece = [&](double lo, double hi) {
    if (hi <= lo) return;
    auto pa = other.PositionAt(lo);
    auto pb = other.PositionAt(hi);
    geom::Segment3D other_piece({pa->x, pa->y, lo}, {pb->x, pb->y, hi});
    const geom::MovingDistance md =
        geom::DistanceBetweenMoving(seg, other_piece);
    integral += md.avg_dist * (hi - lo);
  };
  for (; it != samples.end() && it->t < t1; ++it) {
    if (it->t > prev) {
      piece(prev, it->t);
      prev = it->t;
    }
  }
  piece(prev, t1);
  return integral / (t1 - t0);
}

/// Per-trajectory candidate lists in CSR form: candidates of segment row r
/// are `tids[offsets[r] .. offsets[r + 1])`, sorted and deduplicated. Rows
/// are arena rows, so the layout is shared by probe and kernel phases.
struct CandidateLists {
  std::vector<size_t> offsets;
  std::vector<traj::TrajectoryId> tids;
};

/// The vote kernel: Gaussian-kernel integration of every (segment,
/// candidate) pair — the dominant cost of voting. Partitioned by
/// trajectory: each chunk owns a contiguous trajectory range and writes
/// only its own `votes` entries, with the same accumulation order as a
/// sequential sweep, so results are bit-identical at any thread count.
void RunVoteKernel(const traj::SegmentArena& arena,
                   const traj::TrajectoryStore& store,
                   const VotingParams& params, const CandidateLists& cands,
                   exec::ExecContext* ctx, VotingResult* result) {
  const int64_t start = NowUs();
  const size_t n = store.NumTrajectories();
  exec::ParallelFor(ctx, n, /*grain=*/1,
                    [&](size_t begin, size_t end, size_t /*chunk*/) {
    for (traj::TrajectoryId tid = begin; tid < end; ++tid) {
      std::vector<double>& votes = result->votes[tid];
      for (size_t r = arena.RowBegin(tid); r < arena.RowEnd(tid); ++r) {
        const geom::Segment3D seg = arena.SegmentOf(r);
        double& vote = votes[arena.segment_index(r)];
        for (size_t k = cands.offsets[r]; k < cands.offsets[r + 1]; ++k) {
          vote += VoteFor(seg, store.Get(cands.tids[k]), params);
        }
      }
    }
  });
  result->kernel_us = NowUs() - start;
  if (ctx != nullptr) {
    ctx->stats().RecordPhaseUs("voting_kernel", result->kernel_us);
  }
}

/// Candidates of arena row `r`, against index handle `index`: owners of
/// every segment intersecting the row's MBB expanded by the kernel
/// truncation radius, minus the row's own trajectory, sorted +
/// deduplicated. This per-row list is a pure function of (index file,
/// row), which is what lets the parallel probe stitch per-chunk output
/// back together bit-identically.
Status ProbeRow(const traj::SegmentArena& arena, const rtree::RTree3D& index,
                double radius, size_t r, std::vector<uint64_t>* hits,
                std::vector<traj::TrajectoryId>* candidates) {
  const traj::TrajectoryId tid = arena.owner(r);
  const geom::Mbb3D query = arena.BoundsOf(r).Expanded(radius, 0.0);
  HERMES_RETURN_NOT_OK(
      index.SearchInto(query, rtree::QueryMode::kIntersects, hits));
  candidates->clear();
  for (uint64_t datum : *hits) {
    const traj::SegmentRef ref = rtree::UnpackSegmentRef(datum);
    if (ref.trajectory != tid) candidates->push_back(ref.trajectory);
  }
  std::sort(candidates->begin(), candidates->end());
  candidates->erase(std::unique(candidates->begin(), candidates->end()),
                    candidates->end());
  return Status::OK();
}

/// The probe phase: per-segment candidate lists in CSR form. Fans out over
/// `ctx` when `probe` names the index's backing file — each chunk opens a
/// private read-only handle (buffer pools are not thread-safe, files are)
/// — and falls back to a sequential sweep over the caller's `index`
/// handle otherwise.
StatusOr<CandidateLists> ProbeCandidates(const traj::SegmentArena& arena,
                                         const rtree::RTree3D& index,
                                         const VotingParams& params,
                                         exec::ExecContext* ctx,
                                         const IndexProbeSource* probe) {
  const size_t rows = arena.num_segments();
  const double radius = params.cutoff_sigmas * params.sigma;
  CandidateLists cands;
  cands.offsets.assign(rows + 1, 0);

  const size_t threads = ctx != nullptr ? ctx->threads() : 1;
  const bool parallel = threads > 1 && rows > 1 && probe != nullptr &&
                        probe->env != nullptr;
  if (!parallel) {
    std::vector<uint64_t> hits;  // Reused across segments.
    std::vector<traj::TrajectoryId> candidates;
    for (size_t r = 0; r < rows; ++r) {
      HERMES_RETURN_NOT_OK(
          ProbeRow(arena, index, radius, r, &hits, &candidates));
      cands.tids.insert(cands.tids.end(), candidates.begin(),
                        candidates.end());
      cands.offsets[r + 1] = cands.tids.size();
    }
    return cands;
  }

  // One chunk (and one private handle) per thread; the handles are opened
  // up front on the calling thread, so the fan-out body does pure reads.
  const size_t grain = (rows + threads - 1) / threads;
  const size_t chunks = exec::NumChunks(rows, grain);
  std::vector<std::unique_ptr<rtree::RTree3D>> handles(chunks);
  for (auto& handle : handles) {
    HERMES_ASSIGN_OR_RETURN(
        handle,
        rtree::RTree3D::Open(probe->env, probe->fname, probe->cache_pages));
  }
  std::vector<std::vector<traj::TrajectoryId>> chunk_tids(chunks);
  std::vector<Status> chunk_status(chunks, Status::OK());
  std::vector<uint32_t> row_counts(rows, 0);
  exec::ParallelFor(ctx, rows, grain,
                    [&](size_t begin, size_t end, size_t chunk) {
    const rtree::RTree3D& handle = *handles[chunk];
    std::vector<uint64_t> hits;
    std::vector<traj::TrajectoryId> candidates;
    for (size_t r = begin; r < end; ++r) {
      const Status st =
          ProbeRow(arena, handle, radius, r, &hits, &candidates);
      if (!st.ok()) {
        chunk_status[chunk] = st;
        return;
      }
      row_counts[r] = static_cast<uint32_t>(candidates.size());
      chunk_tids[chunk].insert(chunk_tids[chunk].end(), candidates.begin(),
                               candidates.end());
    }
  });
  for (const Status& st : chunk_status) {
    HERMES_RETURN_NOT_OK(st);
  }

  // Stitch the CSR back together in row order. Chunks cover ascending,
  // disjoint row ranges, so concatenating per-chunk lists in chunk order
  // reproduces the sequential layout exactly.
  for (size_t r = 0; r < rows; ++r) {
    cands.offsets[r + 1] = cands.offsets[r] + row_counts[r];
  }
  cands.tids.reserve(cands.offsets[rows]);
  for (const auto& tids : chunk_tids) {
    cands.tids.insert(cands.tids.end(), tids.begin(), tids.end());
  }
  if (ctx != nullptr) {
    ctx->stats().AddCounter("voting_probe_handles",
                            static_cast<int64_t>(chunks));
  }
  return cands;
}

Status ValidateVotingInputs(const traj::SegmentArena& arena,
                            const traj::TrajectoryStore& store,
                            const VotingParams& params) {
  if (params.sigma <= 0.0) {
    return Status::InvalidArgument("sigma must be positive");
  }
  if (arena.num_trajectories() != store.NumTrajectories()) {
    return Status::InvalidArgument(
        "segment arena is stale: trajectory count differs from store");
  }
  return Status::OK();
}

void SizeResult(const traj::TrajectoryStore& store, VotingResult* result) {
  const size_t n = store.NumTrajectories();
  result->votes.resize(n);
  for (traj::TrajectoryId tid = 0; tid < n; ++tid) {
    result->votes[tid].assign(store.Get(tid).NumSegments(), 0.0);
  }
}

}  // namespace

double VoteFor(const geom::Segment3D& seg, const traj::Trajectory& other,
               const VotingParams& params) {
  const double d =
      SegmentTrajectoryDistance(seg, other, params.min_overlap_ratio);
  if (!std::isfinite(d)) return 0.0;
  if (d > params.cutoff_sigmas * params.sigma) return 0.0;  // Truncated.
  return GaussianKernel(d, params.sigma);
}

StatusOr<VotingResult> ComputeVotingNaive(const traj::SegmentArena& arena,
                                          const traj::TrajectoryStore& store,
                                          const VotingParams& params,
                                          exec::ExecContext* ctx) {
  HERMES_RETURN_NOT_OK(ValidateVotingInputs(arena, store, params));
  VotingResult result;
  SizeResult(store, &result);
  const size_t n = store.NumTrajectories();
  if (n > 1) {
    result.pairs_evaluated =
        static_cast<uint64_t>(arena.num_segments()) * (n - 1);
  }

  // Candidates are implicit (every other trajectory), so there is no CSR
  // materialization; the loop preserves the oid = 0..n-1 accumulation
  // order of a sequential sweep within each trajectory-owned chunk.
  const int64_t start = NowUs();
  exec::ParallelFor(ctx, n, /*grain=*/1,
                    [&](size_t begin, size_t end, size_t /*chunk*/) {
    for (traj::TrajectoryId tid = begin; tid < end; ++tid) {
      std::vector<double>& votes = result.votes[tid];
      for (size_t r = arena.RowBegin(tid); r < arena.RowEnd(tid); ++r) {
        const geom::Segment3D seg = arena.SegmentOf(r);
        double& vote = votes[arena.segment_index(r)];
        for (traj::TrajectoryId oid = 0; oid < n; ++oid) {
          if (oid == tid) continue;
          vote += VoteFor(seg, store.Get(oid), params);
        }
      }
    }
  });
  result.kernel_us = NowUs() - start;
  if (ctx != nullptr) {
    ctx->stats().RecordPhaseUs("voting_kernel", result.kernel_us);
  }
  return result;
}

StatusOr<VotingResult> ComputeVotingIndexed(const traj::SegmentArena& arena,
                                            const traj::TrajectoryStore& store,
                                            const rtree::RTree3D& index,
                                            const VotingParams& params,
                                            exec::ExecContext* ctx,
                                            const IndexProbeSource* probe) {
  HERMES_RETURN_NOT_OK(ValidateVotingInputs(arena, store, params));
  VotingResult result;
  SizeResult(store, &result);

  // Probe phase. Range query: spatial expansion by the kernel truncation
  // radius, exact lifespan in time. Any trajectory that could cast a
  // non-zero vote has at least one segment intersecting the box.
  const int64_t probe_start = NowUs();
  HERMES_ASSIGN_OR_RETURN(
      const CandidateLists cands,
      ProbeCandidates(arena, index, params, ctx, probe));
  result.pairs_evaluated = cands.tids.size();
  result.probe_us = NowUs() - probe_start;
  if (ctx != nullptr) {
    ctx->stats().RecordPhaseUs("voting_probe", result.probe_us);
  }

  RunVoteKernel(arena, store, params, cands, ctx, &result);
  return result;
}

StatusOr<VotingResult> ComputeVotingNaive(const traj::TrajectoryStore& store,
                                          const VotingParams& params) {
  if (params.sigma <= 0.0) {
    return Status::InvalidArgument("sigma must be positive");
  }
  const traj::SegmentArena arena = traj::SegmentArena::Build(store);
  return ComputeVotingNaive(arena, store, params, nullptr);
}

StatusOr<VotingResult> ComputeVotingIndexed(const traj::TrajectoryStore& store,
                                            const rtree::RTree3D& index,
                                            const VotingParams& params) {
  if (params.sigma <= 0.0) {
    return Status::InvalidArgument("sigma must be positive");
  }
  const traj::SegmentArena arena = traj::SegmentArena::Build(store);
  return ComputeVotingIndexed(arena, store, index, params, nullptr);
}

StatusOr<VotingResult> ComputeVotingParallel(
    const traj::TrajectoryStore& store, storage::Env* env,
    const std::string& index_file, const VotingParams& params,
    size_t num_threads) {
  if (params.sigma <= 0.0) {
    return Status::InvalidArgument("sigma must be positive");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("need at least one thread");
  }
  if (!env->FileExists(index_file)) {
    return Status::NotFound("no index file " + index_file);
  }
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<rtree::RTree3D> index,
                          rtree::RTree3D::Open(env, index_file));
  exec::ExecContext ctx(num_threads);
  const traj::SegmentArena arena = traj::SegmentArena::Build(store, &ctx);
  const IndexProbeSource probe{env, index_file, /*cache_pages=*/256};
  return ComputeVotingIndexed(arena, store, *index, params, &ctx, &probe);
}

StatusOr<VotingResult> ComputeVoting(const traj::TrajectoryStore& store,
                                     const VotingParams& params) {
  auto env = storage::Env::NewMemEnv();
  HERMES_ASSIGN_OR_RETURN(
      std::unique_ptr<rtree::RTree3D> index,
      rtree::BuildSegmentIndex(env.get(), "voting.idx", store));
  return ComputeVotingIndexed(store, *index, params);
}

}  // namespace hermes::voting
