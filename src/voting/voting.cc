#include "voting/voting.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_set>

#include "common/logging.h"
#include "common/mathutil.h"
#include "geom/moving_point.h"
#include "rtree/str_bulk_load.h"

namespace hermes::voting {

double VotingResult::TotalVoting(traj::TrajectoryId tid) const {
  double s = 0.0;
  for (double v : votes[tid]) s += v;
  return s;
}

double VotingResult::MeanVoting(traj::TrajectoryId tid) const {
  if (votes[tid].empty()) return 0.0;
  return TotalVoting(tid) / static_cast<double>(votes[tid].size());
}

namespace {

/// Average synchronized distance between the moving point of `seg` and
/// trajectory `other`, over the overlap of their lifespans; +inf when the
/// overlap covers less than `min_overlap_ratio` of the segment's lifespan.
double SegmentTrajectoryDistance(const geom::Segment3D& seg,
                                 const traj::Trajectory& other,
                                 double min_overlap_ratio) {
  const double t0 = std::max(seg.a.t, other.StartTime());
  const double t1 = std::min(seg.b.t, other.EndTime());
  if (t0 >= t1) return std::numeric_limits<double>::infinity();
  const double seg_dur = seg.duration();
  if (seg_dur <= 0.0) return std::numeric_limits<double>::infinity();
  if ((t1 - t0) / seg_dur < min_overlap_ratio) {
    return std::numeric_limits<double>::infinity();
  }

  // Breakpoints: the other trajectory's sample times inside (t0, t1).
  const auto& samples = other.samples();
  auto it = std::lower_bound(
      samples.begin(), samples.end(), t0,
      [](const geom::Point3D& p, double v) { return p.t < v; });

  double integral = 0.0;
  double prev = t0;
  auto piece = [&](double lo, double hi) {
    if (hi <= lo) return;
    auto pa = other.PositionAt(lo);
    auto pb = other.PositionAt(hi);
    geom::Segment3D other_piece({pa->x, pa->y, lo}, {pb->x, pb->y, hi});
    const geom::MovingDistance md =
        geom::DistanceBetweenMoving(seg, other_piece);
    integral += md.avg_dist * (hi - lo);
  };
  for (; it != samples.end() && it->t < t1; ++it) {
    if (it->t > prev) {
      piece(prev, it->t);
      prev = it->t;
    }
  }
  piece(prev, t1);
  return integral / (t1 - t0);
}

}  // namespace

double VoteFor(const geom::Segment3D& seg, const traj::Trajectory& other,
               const VotingParams& params) {
  const double d =
      SegmentTrajectoryDistance(seg, other, params.min_overlap_ratio);
  if (!std::isfinite(d)) return 0.0;
  if (d > params.cutoff_sigmas * params.sigma) return 0.0;  // Truncated.
  return GaussianKernel(d, params.sigma);
}

StatusOr<VotingResult> ComputeVotingNaive(const traj::TrajectoryStore& store,
                                          const VotingParams& params) {
  if (params.sigma <= 0.0) {
    return Status::InvalidArgument("sigma must be positive");
  }
  VotingResult result;
  const size_t n = store.NumTrajectories();
  result.votes.resize(n);
  for (traj::TrajectoryId tid = 0; tid < n; ++tid) {
    const traj::Trajectory& t = store.Get(tid);
    result.votes[tid].assign(t.NumSegments(), 0.0);
    for (size_t i = 0; i < t.NumSegments(); ++i) {
      const geom::Segment3D seg = t.SegmentAt(i);
      for (traj::TrajectoryId oid = 0; oid < n; ++oid) {
        if (oid == tid) continue;
        ++result.pairs_evaluated;
        result.votes[tid][i] += VoteFor(seg, store.Get(oid), params);
      }
    }
  }
  return result;
}

namespace {

/// Indexed voting for one trajectory; shared by the serial and parallel
/// engines.
Status VoteOneTrajectory(const traj::TrajectoryStore& store,
                         const rtree::RTree3D& index,
                         const VotingParams& params, traj::TrajectoryId tid,
                         std::vector<double>* votes, uint64_t* pairs) {
  const traj::Trajectory& t = store.Get(tid);
  votes->assign(t.NumSegments(), 0.0);
  const double radius = params.cutoff_sigmas * params.sigma;
  std::vector<uint64_t> hits;  // Reused across segments.
  std::vector<traj::TrajectoryId> candidates;
  for (size_t i = 0; i < t.NumSegments(); ++i) {
    const geom::Segment3D seg = t.SegmentAt(i);
    // Range query: spatial expansion by the kernel truncation radius,
    // exact lifespan in time. Any trajectory that could cast a non-zero
    // vote has at least one segment intersecting this box.
    const geom::Mbb3D query = seg.Bounds().Expanded(radius, 0.0);
    HERMES_RETURN_NOT_OK(
        index.SearchInto(query, rtree::QueryMode::kIntersects, &hits));
    candidates.clear();
    for (uint64_t datum : hits) {
      const traj::SegmentRef ref = rtree::UnpackSegmentRef(datum);
      if (ref.trajectory != tid) candidates.push_back(ref.trajectory);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (traj::TrajectoryId oid : candidates) {
      ++*pairs;
      (*votes)[i] += VoteFor(seg, store.Get(oid), params);
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<VotingResult> ComputeVotingIndexed(const traj::TrajectoryStore& store,
                                            const rtree::RTree3D& index,
                                            const VotingParams& params) {
  if (params.sigma <= 0.0) {
    return Status::InvalidArgument("sigma must be positive");
  }
  VotingResult result;
  const size_t n = store.NumTrajectories();
  result.votes.resize(n);
  for (traj::TrajectoryId tid = 0; tid < n; ++tid) {
    HERMES_RETURN_NOT_OK(VoteOneTrajectory(store, index, params, tid,
                                           &result.votes[tid],
                                           &result.pairs_evaluated));
  }
  return result;
}

StatusOr<VotingResult> ComputeVotingParallel(
    const traj::TrajectoryStore& store, storage::Env* env,
    const std::string& index_file, const VotingParams& params,
    size_t num_threads) {
  if (params.sigma <= 0.0) {
    return Status::InvalidArgument("sigma must be positive");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("need at least one thread");
  }
  if (!env->FileExists(index_file)) {
    return Status::NotFound("no index file " + index_file);
  }
  const size_t n = store.NumTrajectories();
  VotingResult result;
  result.votes.resize(n);
  num_threads = std::min(num_threads, std::max<size_t>(1, n));

  std::vector<Status> statuses(num_threads, Status::OK());
  std::vector<uint64_t> pairs(num_threads, 0);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    workers.emplace_back([&, w]() {
      // Private index handle: buffer pools must not be shared.
      auto handle = rtree::RTree3D::Open(env, index_file);
      if (!handle.ok()) {
        statuses[w] = handle.status();
        return;
      }
      for (traj::TrajectoryId tid = w; tid < n; tid += num_threads) {
        Status st = VoteOneTrajectory(store, **handle, params, tid,
                                      &result.votes[tid], &pairs[w]);
        if (!st.ok()) {
          statuses[w] = st;
          return;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  for (const Status& st : statuses) {
    HERMES_RETURN_NOT_OK(st);
  }
  for (uint64_t p : pairs) result.pairs_evaluated += p;
  return result;
}

StatusOr<VotingResult> ComputeVoting(const traj::TrajectoryStore& store,
                                     const VotingParams& params) {
  auto env = storage::Env::NewMemEnv();
  HERMES_ASSIGN_OR_RETURN(
      std::unique_ptr<rtree::RTree3D> index,
      rtree::BuildSegmentIndex(env.get(), "voting.idx", store));
  return ComputeVotingIndexed(store, *index, params);
}

}  // namespace hermes::voting
