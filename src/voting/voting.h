#ifndef HERMES_VOTING_VOTING_H_
#define HERMES_VOTING_VOTING_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "exec/exec_context.h"
#include "rtree/rtree3d.h"
#include "storage/env.h"
#include "traj/segment_arena.h"
#include "traj/trajectory_store.h"

namespace hermes::voting {

/// \brief Parameters of the NaTS voting process.
struct VotingParams {
  /// Gaussian bandwidth of the vote kernel, in spatial units (meters).
  double sigma = 100.0;
  /// Kernel truncation radius, in sigmas: trajectories farther than
  /// `cutoff_sigmas * sigma` everywhere during a segment's lifespan
  /// contribute a 0 vote. Keeping the kernel compact makes the naive and
  /// index-accelerated engines produce *identical* results.
  double cutoff_sigmas = 3.0;
  /// Minimum fraction of a segment's lifespan another trajectory must
  /// co-exist with to cast a vote.
  double min_overlap_ratio = 0.5;
};

/// \brief Per-trajectory voting descriptors: one value per 3D segment.
///
/// `votes[tid][i]` is the (fractional) number of other trajectories
/// co-moving with segment i of trajectory tid — the paper's "value ranging
/// from 0 to N ... how many trajectories co-move with that trajectory for a
/// certain period of time".
struct VotingResult {
  std::vector<std::vector<double>> votes;
  /// Candidate (segment, other-trajectory) pairs examined — the work metric
  /// the index reduces.
  uint64_t pairs_evaluated = 0;
  /// Wall time of the index probe phase (0 for the naive engine, which has
  /// no probe) and of the vote kernel — the S2T per-phase breakdown's
  /// sub-phases of `voting_us`.
  int64_t probe_us = 0;
  int64_t kernel_us = 0;

  double TotalVoting(traj::TrajectoryId tid) const;
  double MeanVoting(traj::TrajectoryId tid) const;
};

/// \brief Where the probe phase can open additional read-only pg3D-Rtree
/// handles over the index being probed (the `ComputeVotingParallel`
/// trick): each `ParallelFor` chunk gets a private handle — and with it a
/// private, non-thread-safe buffer pool — over the shared immutable index
/// file. The file must hold the complete index (builders flush after bulk
/// load) and must not be written while voting runs.
struct IndexProbeSource {
  storage::Env* env = nullptr;
  std::string fname;
  size_t cache_pages = 256;
};

/// \brief Computes voting descriptors for every trajectory in the MOD.
///
/// Two engines with identical output:
///  - `ComputeVotingNaive` — the "corresponding PostgreSQL function":
///    every segment is compared against every other trajectory, O(S·N).
///  - `ComputeVotingIndexed` — the in-DBMS fast path: a pg3D-Rtree range
///    query (segment MBB expanded by the kernel truncation radius) prunes
///    the candidate set first.
///
/// Both consume a columnar `SegmentArena` snapshot and an optional
/// `ExecContext`. The vote kernel is partitioned by trajectory: every
/// trajectory's votes are produced by exactly one chunk with the same
/// per-segment, per-candidate accumulation order as the sequential engine,
/// so the result is bit-for-bit identical at any thread count.
///
/// The indexed engine's probe phase fans out too when `probe` names the
/// index's backing file: each chunk probes through its own read-only
/// handle, and per-segment candidate lists (sorted + deduplicated per
/// segment, exactly as in the sequential sweep) are stitched back in
/// segment order — so the CSR candidate structure, and with it the votes,
/// stay bit-identical at any thread count. Without a `probe` source the
/// probe stays on the calling thread (the caller's handle owns a
/// non-thread-safe buffer pool).
StatusOr<VotingResult> ComputeVotingNaive(const traj::SegmentArena& arena,
                                          const traj::TrajectoryStore& store,
                                          const VotingParams& params,
                                          exec::ExecContext* ctx = nullptr);

StatusOr<VotingResult> ComputeVotingIndexed(const traj::SegmentArena& arena,
                                            const traj::TrajectoryStore& store,
                                            const rtree::RTree3D& index,
                                            const VotingParams& params,
                                            exec::ExecContext* ctx = nullptr,
                                            const IndexProbeSource* probe =
                                                nullptr);

/// Store-walking convenience overloads: snapshot an arena, then run the
/// arena engine sequentially (the pre-arena API surface).
StatusOr<VotingResult> ComputeVotingNaive(const traj::TrajectoryStore& store,
                                          const VotingParams& params);

StatusOr<VotingResult> ComputeVotingIndexed(const traj::TrajectoryStore& store,
                                            const rtree::RTree3D& index,
                                            const VotingParams& params);

/// Convenience: builds a temporary in-memory segment index, then runs the
/// indexed engine.
StatusOr<VotingResult> ComputeVoting(const traj::TrajectoryStore& store,
                                     const VotingParams& params);

/// \brief Multi-threaded indexed voting over a persisted index.
/// `index_file` must name an existing segment index under `env` (e.g.
/// built by `rtree::BuildSegmentIndex`). Both phases fan out over
/// `num_threads`: the probe through per-chunk read handles on
/// `index_file`, the vote kernel over trajectory chunks. Output is
/// identical to the single-threaded engines.
StatusOr<VotingResult> ComputeVotingParallel(
    const traj::TrajectoryStore& store, storage::Env* env,
    const std::string& index_file, const VotingParams& params,
    size_t num_threads);

/// \brief Vote cast by trajectory `other` for segment `seg`: the truncated
/// Gaussian kernel of their time-synchronized average distance during the
/// segment's lifespan. Exposed for tests.
double VoteFor(const geom::Segment3D& seg, const traj::Trajectory& other,
               const VotingParams& params);

}  // namespace hermes::voting

#endif  // HERMES_VOTING_VOTING_H_
