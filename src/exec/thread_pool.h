#ifndef HERMES_EXEC_THREAD_POOL_H_
#define HERMES_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hermes::exec {

/// \brief A fixed-size pool of worker threads draining a FIFO task queue.
///
/// Workers are spawned in the constructor and joined in the destructor;
/// the pool never grows or shrinks. `Submit` is thread-safe. Tasks must
/// not throw (the library is Status-based and exception-free); a throwing
/// task terminates the process. `ParallelFor` wraps its chunk bodies in a
/// catch-all precisely so user exceptions never reach the queue.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// The pool whose worker is executing the calling thread, or nullptr
  /// when called from outside any pool. This is what lets `ParallelFor`
  /// detect a nested fan-out (a worker fanning out onto its own pool) and
  /// fall back to draining chunks on the calling thread instead of
  /// blocking a worker on its own queue.
  static ThreadPool* Current();

 private:
  void WorkerLoop();

  common::Mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  /// Written only in the constructor, joined in the destructor (both
  /// single-threaded by contract); `num_threads()` reads it freely.
  std::vector<std::thread> workers_;
};

}  // namespace hermes::exec

#endif  // HERMES_EXEC_THREAD_POOL_H_
