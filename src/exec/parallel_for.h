#ifndef HERMES_EXEC_PARALLEL_FOR_H_
#define HERMES_EXEC_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "exec/exec_context.h"

namespace hermes::exec {

/// \brief Deterministic chunking of the index range [0, n): `NumChunks`
/// and `ChunkBounds` depend only on (n, grain) — never on the thread
/// count — so per-chunk accumulators merged in chunk order produce the
/// same result at any parallelism level.
size_t NumChunks(size_t n, size_t grain);

/// Chunk `c`'s half-open sub-range [begin, end) of [0, n).
std::pair<size_t, size_t> ChunkBounds(size_t n, size_t grain, size_t c);

/// \brief Runs `fn(begin, end, chunk_index)` over every chunk of [0, n).
///
/// Sequential contexts (or n <= grain) run all chunks inline, in order, on
/// the calling thread. Parallel contexts share the chunks between the
/// calling thread and the context's pool: chunks are claimed from an
/// atomic cursor, the caller drains chunks alongside the pool's workers,
/// and the call returns once every chunk has finished. Chunk boundaries
/// are identical in both modes (see `ChunkBounds`), which is what makes
/// deterministic merging possible.
///
/// **Re-entrancy:** `ParallelFor` may be called from inside a pool worker
/// (a nested fan-out). The caller always participates in draining, so the
/// nested call completes even when every other worker is busy or the pool
/// has a single worker — at worst all nested chunks run inline on the
/// calling worker. Nested fan-outs are counted in the context's stats
/// under the "exec_nested_fanouts" counter ("exec_fanouts" counts every
/// parallel fan-out).
///
/// If `fn` throws, the first exception (in chunk completion order) is
/// captured and rethrown on the calling thread after every claimed chunk
/// has finished; remaining unclaimed chunks are abandoned. Pool workers
/// never see the exception (the ThreadPool task contract stays nothrow).
/// Chunks may run in any order and concurrently; `fn` must only write to
/// chunk-private or index-partitioned state.
void ParallelFor(ExecContext* ctx, size_t n, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace hermes::exec

#endif  // HERMES_EXEC_PARALLEL_FOR_H_
