#include "exec/thread_pool.h"

namespace hermes::exec {

namespace {
thread_local ThreadPool* current_pool = nullptr;
}  // namespace

ThreadPool* ThreadPool::Current() { return current_pool; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    common::MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    common::MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      common::MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) lock.Wait(cv_);
      if (queue_.empty()) return;  // stop_ set and queue drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace hermes::exec
