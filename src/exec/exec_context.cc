#include "exec/exec_context.h"

#include <thread>

namespace hermes::exec {

ExecContext::ExecContext(size_t threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
}

ThreadPool* ExecContext::pool() {
  if (threads_ <= 1) return nullptr;
  std::call_once(pool_once_, [this]() {
    // The ParallelFor caller is the threads_-th executor.
    pool_ = std::make_unique<ThreadPool>(threads_ - 1);
  });
  return pool_.get();
}

}  // namespace hermes::exec
