#ifndef HERMES_EXEC_PARALLEL_SORT_H_
#define HERMES_EXEC_PARALLEL_SORT_H_

#include <algorithm>
#include <cstddef>

#include "exec/parallel_for.h"

namespace hermes::exec {

/// \brief Comparison sort fanned out over an `ExecContext`: sorted chunks
/// produced in parallel, then merged with sequential `std::inplace_merge`
/// passes. Falls back to `std::sort` for sequential contexts or small
/// inputs.
///
/// With a total-order comparator (no ties) the output is the unique sorted
/// permutation, identical at any thread count; with ties the merge is
/// stable per pass but may order equal elements differently than
/// `std::sort` — callers that need determinism should break ties
/// explicitly (e.g. on a datum).
template <typename It, typename Comp>
void ParallelSort(ExecContext* ctx, It begin, It end, Comp comp) {
  const size_t n = static_cast<size_t>(end - begin);
  constexpr size_t kMinParallel = 4096;
  if (ctx == nullptr || ctx->threads() <= 1 || n < kMinParallel) {
    std::sort(begin, end, comp);
    return;
  }
  const size_t grain = (n + ctx->threads() - 1) / ctx->threads();
  ParallelFor(ctx, n, grain, [&](size_t lo, size_t hi, size_t /*chunk*/) {
    std::sort(begin + lo, begin + hi, comp);
  });
  for (size_t width = grain; width < n; width *= 2) {
    for (size_t lo = 0; lo + width < n; lo += 2 * width) {
      const size_t hi = lo + 2 * width < n ? lo + 2 * width : n;
      std::inplace_merge(begin + lo, begin + lo + width, begin + hi, comp);
    }
  }
}

}  // namespace hermes::exec

#endif  // HERMES_EXEC_PARALLEL_SORT_H_
