#ifndef HERMES_EXEC_EXEC_CONTEXT_H_
#define HERMES_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"

namespace hermes::exec {

/// \brief Accumulated execution statistics of one context: per-phase wall
/// times and named counters, filled in by the layers a context is threaded
/// through (arena build, voting, segmentation, index build, ...).
///
/// All mutators are thread-safe; phases recorded under the same name
/// accumulate.
class ExecStats {
 public:
  void RecordPhaseUs(const std::string& phase, int64_t us) {
    common::MutexLock lock(&mu_);
    phase_us_[phase] += us;
  }
  void AddCounter(const std::string& name, int64_t delta) {
    common::MutexLock lock(&mu_);
    counters_[name] += delta;
  }

  int64_t PhaseUs(const std::string& phase) const {
    common::MutexLock lock(&mu_);
    auto it = phase_us_.find(phase);
    return it == phase_us_.end() ? 0 : it->second;
  }
  int64_t Counter(const std::string& name) const {
    common::MutexLock lock(&mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Snapshot of all phase timings (for reports / benches).
  std::map<std::string, int64_t> PhaseTimings() const {
    common::MutexLock lock(&mu_);
    return phase_us_;
  }

  void Reset() {
    common::MutexLock lock(&mu_);
    phase_us_.clear();
    counters_.clear();
  }

 private:
  mutable common::Mutex mu_;
  std::map<std::string, int64_t> phase_us_ GUARDED_BY(mu_);
  std::map<std::string, int64_t> counters_ GUARDED_BY(mu_);
};

/// \brief Handle threaded through the voting → segmentation → clustering
/// hot path: how many threads a consumer may use, the shared `ThreadPool`
/// that provides them, and the statistics sink.
///
/// A context with `threads() == 1` never spawns a pool — every consumer
/// runs inline, so sequential callers pay nothing. The pool is created
/// lazily on first parallel use and reused for the lifetime of the
/// context. Contexts are cheap to construct; long-lived owners (a SQL
/// `Session`, a benchmark) should reuse one so the pool warm-up is paid
/// once.
class ExecContext {
 public:
  /// `threads == 0` means "hardware concurrency".
  explicit ExecContext(size_t threads = 1);

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  size_t threads() const { return threads_; }

  /// The worker pool, created on first call. Only meaningful when
  /// `threads() > 1`; returns nullptr for sequential contexts. The pool
  /// holds `threads() - 1` workers: `ParallelFor`'s calling thread always
  /// drains chunks alongside the workers, so total concurrency is exactly
  /// `threads()` without oversubscribing the machine.
  ThreadPool* pool();

  ExecStats& stats() { return stats_; }
  const ExecStats& stats() const { return stats_; }

 private:
  size_t threads_;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
  ExecStats stats_;
};

}  // namespace hermes::exec

#endif  // HERMES_EXEC_EXEC_CONTEXT_H_
