#include "exec/parallel_for.h"

#include <condition_variable>
#include <mutex>

namespace hermes::exec {

size_t NumChunks(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

std::pair<size_t, size_t> ChunkBounds(size_t n, size_t grain, size_t c) {
  if (grain == 0) grain = 1;
  const size_t begin = c * grain;
  const size_t end = begin + grain < n ? begin + grain : n;
  return {begin, end};
}

void ParallelFor(ExecContext* ctx, size_t n, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t chunks = NumChunks(n, grain);

  ThreadPool* pool = ctx != nullptr ? ctx->pool() : nullptr;
  if (pool == nullptr || chunks == 1) {
    for (size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = ChunkBounds(n, grain, c);
      fn(begin, end, c);
    }
    return;
  }

  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = chunks;
  for (size_t c = 0; c < chunks; ++c) {
    pool->Submit([&, c]() {
      const auto [begin, end] = ChunkBounds(n, grain, c);
      fn(begin, end, c);
      // Notify while holding the lock: the caller destroys mu/cv as soon
      // as it observes remaining == 0, so an unlocked notify could touch
      // freed stack memory.
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return remaining == 0; });
}

}  // namespace hermes::exec
