#include "exec/parallel_for.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hermes::exec {

size_t NumChunks(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

std::pair<size_t, size_t> ChunkBounds(size_t n, size_t grain, size_t c) {
  if (grain == 0) grain = 1;
  const size_t begin = c * grain;
  const size_t end = begin + grain < n ? begin + grain : n;
  return {begin, end};
}

namespace {

/// Shared fan-out state. Heap-allocated and shared_ptr-owned because
/// helper tasks submitted to the pool can outlive the `ParallelFor` call
/// that spawned them: a helper that wakes up after the caller drained
/// everything must still be able to read `next`/`chunks` safely before
/// bowing out.
struct FanOutState {
  size_t n = 0;
  size_t grain = 0;
  size_t chunks = 0;
  /// Only dereferenced by threads that claimed a chunk; every claimed
  /// chunk completes before the caller (who owns the function) returns.
  const std::function<void(size_t, size_t, size_t)>* fn = nullptr;

  /// Claim cursor: fetch_add hands each chunk to exactly one thread.
  std::atomic<size_t> next{0};

  common::Mutex mu;
  std::condition_variable cv;
  /// Chunks finished or abandoned.
  size_t done GUARDED_BY(mu) = 0;
  /// First failure.
  std::exception_ptr error GUARDED_BY(mu);
};

/// Claims and executes chunks until the cursor runs dry. Runs on the
/// calling thread and on any pool worker that picked up a helper task;
/// both use the same code path, so the caller can never block behind a
/// queue that nobody is draining (the re-entrancy guarantee).
void DrainChunks(FanOutState* s) {
  for (;;) {
    const size_t c = s->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= s->chunks) return;
    std::exception_ptr eptr;
    try {
      const auto [begin, end] = ChunkBounds(s->n, s->grain, c);
      (*s->fn)(begin, end, c);
    } catch (...) {
      eptr = std::current_exception();
    }
    common::MutexLock lock(&s->mu);
    ++s->done;
    if (eptr != nullptr && s->error == nullptr) {
      s->error = eptr;
      // Abandon unclaimed chunks: mark them done so the caller's wait
      // terminates, and park the cursor past the end so no thread claims
      // them. Claimed in-flight chunks still finish normally.
      const size_t skipped_from =
          s->next.exchange(s->chunks, std::memory_order_relaxed);
      if (skipped_from < s->chunks) s->done += s->chunks - skipped_from;
    }
    if (s->done >= s->chunks) s->cv.notify_all();
  }
}

}  // namespace

void ParallelFor(ExecContext* ctx, size_t n, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t chunks = NumChunks(n, grain);

  ThreadPool* pool = ctx != nullptr ? ctx->pool() : nullptr;
  if (pool == nullptr || chunks == 1) {
    for (size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = ChunkBounds(n, grain, c);
      fn(begin, end, c);
    }
    return;
  }

  auto state = std::make_shared<FanOutState>();
  state->n = n;
  state->grain = grain;
  state->chunks = chunks;
  state->fn = &fn;

  ctx->stats().AddCounter("exec_fanouts", 1);
  if (ThreadPool::Current() == pool) {
    ctx->stats().AddCounter("exec_nested_fanouts", 1);
  }

  // One helper task per worker that could usefully join (the caller
  // covers one chunk stream itself). Helpers that run late — or never,
  // when the pool is saturated by the outer fan-out — find the cursor
  // exhausted and return without touching `fn`.
  const size_t helpers = std::min(pool->num_threads(), chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([state]() { DrainChunks(state.get()); });
  }
  DrainChunks(state.get());

  common::MutexLock lock(&state->mu);
  while (state->done < state->chunks) lock.Wait(state->cv);
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

}  // namespace hermes::exec
