#include "clustering/greedy_clustering.h"

#include <limits>
#include <unordered_set>

#include "traj/distance.h"

namespace hermes::clustering {

size_t ClusteringResult::TotalMembers() const {
  size_t n = 0;
  for (const auto& c : clusters) n += c.members.size();
  return n;
}

std::vector<int> ClusteringResult::Assignment(size_t n) const {
  std::vector<int> a(n, -1);
  for (size_t ci = 0; ci < clusters.size(); ++ci) {
    for (size_t m : clusters[ci].members) a[m] = static_cast<int>(ci);
  }
  return a;
}

ClusteringResult ClusterAroundRepresentatives(
    const std::vector<traj::SubTrajectory>& subs,
    const std::vector<size_t>& representative_indices,
    const ClusteringParams& params) {
  ClusteringResult out;
  std::unordered_set<size_t> rep_set(representative_indices.begin(),
                                     representative_indices.end());
  out.clusters.reserve(representative_indices.size());
  for (size_t rep : representative_indices) {
    Cluster c;
    c.representative = rep;
    c.members.push_back(rep);
    out.clusters.push_back(std::move(c));
  }

  for (size_t i = 0; i < subs.size(); ++i) {
    if (rep_set.count(i) > 0) continue;
    double best_dist = std::numeric_limits<double>::infinity();
    size_t best_cluster = out.clusters.size();
    for (size_t ci = 0; ci < out.clusters.size(); ++ci) {
      const size_t rep = out.clusters[ci].representative;
      const double d = traj::ClusteringDistance(
          subs[i].points, subs[rep].points, params.min_overlap_ratio);
      if (d < best_dist) {
        best_dist = d;
        best_cluster = ci;
      }
    }
    if (best_cluster < out.clusters.size() && best_dist <= params.epsilon) {
      out.clusters[best_cluster].members.push_back(i);
    } else {
      out.outliers.push_back(i);
    }
  }
  return out;
}

}  // namespace hermes::clustering
