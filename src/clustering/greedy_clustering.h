#ifndef HERMES_CLUSTERING_GREEDY_CLUSTERING_H_
#define HERMES_CLUSTERING_GREEDY_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "traj/sub_trajectory.h"

namespace hermes::clustering {

/// \brief Parameters of the greedy clustering step of SaCO.
struct ClusteringParams {
  /// Maximum time-aware distance from a member to its representative.
  double epsilon = 200.0;
  /// Minimum temporal overlap ratio for membership.
  double min_overlap_ratio = 0.5;
};

/// \brief One cluster: a representative plus its members (indices into the
/// sub-trajectory array handed to `ClusterAroundRepresentatives`).
struct Cluster {
  size_t representative = 0;        ///< Index of the representative.
  std::vector<size_t> members;      ///< Includes the representative itself.
};

/// \brief Output of greedy clustering: clusters around representatives,
/// plus the sub-trajectories that fit nowhere (the outliers).
struct ClusteringResult {
  std::vector<Cluster> clusters;
  std::vector<size_t> outliers;

  size_t TotalMembers() const;
  /// cluster index for each sub-trajectory, or -1 for outliers.
  std::vector<int> Assignment(size_t n) const;
};

/// \brief Builds clusters "around" the representatives: every non-selected
/// sub-trajectory joins the representative with the smallest time-aware
/// distance if that distance is <= epsilon; otherwise it is an outlier.
ClusteringResult ClusterAroundRepresentatives(
    const std::vector<traj::SubTrajectory>& subs,
    const std::vector<size_t>& representative_indices,
    const ClusteringParams& params);

}  // namespace hermes::clustering

#endif  // HERMES_CLUSTERING_GREEDY_CLUSTERING_H_
