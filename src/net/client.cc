#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace hermes::net {

StatusOr<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                  uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close(fd);
    return Status::IOError("connect(" + host + ":" + std::to_string(port) +
                           "): " + std::strerror(err));
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

void Client::CloseWrite() { shutdown(fd_, SHUT_WR); }

Status Client::SendRaw(const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < size) {
    const ssize_t w = send(fd_, p + off, size - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status Client::SendExecute(const std::string& sql) {
  std::string frame;
  AppendExecuteFrame(sql, &frame);
  return SendRaw(frame.data(), frame.size());
}

Status Client::SendPrepare(uint32_t stmt_id, const std::string& sql) {
  std::string frame;
  AppendPrepareFrame(stmt_id, sql, &frame);
  return SendRaw(frame.data(), frame.size());
}

Status Client::SendBindExecute(uint32_t stmt_id,
                               const std::vector<sql::Value>& binds) {
  std::string frame;
  AppendBindExecuteFrame(stmt_id, binds, &frame);
  return SendRaw(frame.data(), frame.size());
}

Status Client::SendFlush() {
  std::string frame;
  AppendFlushFrame(&frame);
  return SendRaw(frame.data(), frame.size());
}

Status Client::SendPing() {
  std::string frame;
  AppendPingFrame(&frame);
  return SendRaw(frame.data(), frame.size());
}

Status Client::SendClosePrepared(uint32_t stmt_id) {
  std::string frame;
  AppendClosePreparedFrame(stmt_id, &frame);
  return SendRaw(frame.data(), frame.size());
}

StatusOr<Response> Client::ReadResponse() {
  for (;;) {
    std::string body;
    const FrameScan scan = ScanFrame(rbuf_, &roff_, &body);
    if (scan == FrameScan::kFrame) {
      if (roff_ == rbuf_.size()) {
        rbuf_.clear();
        roff_ = 0;
      }
      return DecodeResponse(body);
    }
    if (scan == FrameScan::kOversize) {
      return Status::Corruption("oversize response frame");
    }
    if (receive_timeout_ms_ > 0) {
      // Bound the wait for the next byte (not the whole response):
      // what the deadline protects against is a hung or wedged server,
      // which stops sending entirely.
      pollfd pfd{fd_, POLLIN, 0};
      int r = 0;
      do {
        r = poll(&pfd, 1, receive_timeout_ms_);
      } while (r < 0 && errno == EINTR);
      if (r == 0) {
        return Status::IOError("receive timeout after " +
                               std::to_string(receive_timeout_ms_) +
                               "ms waiting for server response");
      }
      if (r < 0) {
        return Status::IOError(std::string("poll: ") + std::strerror(errno));
      }
    }
    char buf[16 * 1024];
    const ssize_t r = read(fd_, buf, sizeof(buf));
    if (r > 0) {
      rbuf_.append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r == 0) {
      return Status::IOError("connection closed by server");
    }
    return Status::IOError(std::string("read: ") + std::strerror(errno));
  }
}

StatusOr<sql::Table> Client::ReadTable() {
  HERMES_ASSIGN_OR_RETURN(Response resp, ReadResponse());
  if (resp.op == Opcode::kError) {
    return Status(resp.code, resp.message);
  }
  if (resp.op != Opcode::kTable) {
    return Status::Corruption("expected TABLE response, got opcode " +
                              std::to_string(static_cast<int>(resp.op)));
  }
  return std::move(resp.table);
}

StatusOr<sql::Table> Client::Execute(const std::string& sql) {
  HERMES_RETURN_NOT_OK(SendExecute(sql));
  return ReadTable();
}

StatusOr<uint16_t> Client::Prepare(uint32_t stmt_id, const std::string& sql) {
  HERMES_RETURN_NOT_OK(SendPrepare(stmt_id, sql));
  HERMES_ASSIGN_OR_RETURN(Response resp, ReadResponse());
  if (resp.op == Opcode::kError) {
    return Status(resp.code, resp.message);
  }
  if (resp.op != Opcode::kPrepared || resp.stmt_id != stmt_id) {
    return Status::Corruption("bad PREPARED response");
  }
  return resp.num_params;
}

StatusOr<sql::Table> Client::BindExecute(
    uint32_t stmt_id, const std::vector<sql::Value>& binds) {
  HERMES_RETURN_NOT_OK(SendBindExecute(stmt_id, binds));
  return ReadTable();
}

StatusOr<sql::Table> Client::Flush() {
  HERMES_RETURN_NOT_OK(SendFlush());
  return ReadTable();
}

Status Client::Ping() {
  HERMES_RETURN_NOT_OK(SendPing());
  HERMES_ASSIGN_OR_RETURN(Response resp, ReadResponse());
  if (resp.op == Opcode::kError) {
    return Status(resp.code, resp.message);
  }
  if (resp.op != Opcode::kPong) {
    return Status::Corruption("expected PONG response");
  }
  return Status::OK();
}

Status Client::ClosePrepared(uint32_t stmt_id) {
  HERMES_RETURN_NOT_OK(SendClosePrepared(stmt_id));
  HERMES_ASSIGN_OR_RETURN(Response resp, ReadResponse());
  if (resp.op == Opcode::kError) {
    return Status(resp.code, resp.message);
  }
  if (resp.op != Opcode::kPong) {
    return Status::Corruption("expected PONG response");
  }
  return Status::OK();
}

namespace {

/// net::Client behind the backend-neutral statement API. The wire
/// protocol already speaks id-based prepare, so the executor's handles
/// are the wire statement ids themselves — no translation map needed.
class ClientExecutor final : public sql::StatementExecutor {
 public:
  explicit ClientExecutor(std::unique_ptr<Client> client)
      : client_(std::move(client)) {}

  StatusOr<sql::Table> Execute(const std::string& sql) override {
    return client_->Execute(sql);
  }

  StatusOr<sql::PreparedHandle> Prepare(const std::string& sql) override {
    const uint32_t id = next_id_++;
    HERMES_ASSIGN_OR_RETURN(uint16_t num_params, client_->Prepare(id, sql));
    sql::PreparedHandle handle;
    handle.id = id;
    handle.num_params = num_params;
    return handle;
  }

  StatusOr<sql::Table> BindExecute(
      uint32_t id, const std::vector<sql::Value>& binds) override {
    return client_->BindExecute(id, binds);
  }

  Status ClosePrepared(uint32_t id) override {
    return client_->ClosePrepared(id);
  }

  Status Flush() override { return client_->Flush().status(); }

 private:
  std::unique_ptr<Client> client_;
  uint32_t next_id_ = 1;
};

}  // namespace

std::unique_ptr<sql::StatementExecutor> MakeStatementExecutor(
    std::unique_ptr<Client> client) {
  return std::make_unique<ClientExecutor>(std::move(client));
}

}  // namespace hermes::net
