#include "net/wire.h"

#include <cstring>
#include <utility>

#include "common/coding.h"

namespace hermes::net {

namespace {

void PutString(std::string* dst, const std::string& s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s);
}

void PutValue(std::string* dst, const sql::Value& v) {
  dst->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case sql::ValueType::kNull:
      break;
    case sql::ValueType::kInt:
      PutFixed64(dst, static_cast<uint64_t>(v.AsInt()));
      break;
    case sql::ValueType::kDouble:
      PutDouble(dst, v.AsDouble());
      break;
    case sql::ValueType::kString:
      PutString(dst, v.AsString());
      break;
  }
}

/// Wraps an encoded body (opcode + payload) in the length prefix.
void PutFrame(std::string* dst, const std::string& body) {
  PutFixed32(dst, static_cast<uint32_t>(body.size()));
  dst->append(body);
}

/// \brief Bounds-checked sequential reader over a frame body.
///
/// The shared `common::Decoder` trusts its caller on bounds; wire bytes
/// come from the network, so every read here checks `remaining()` first
/// and latches a failure flag that the decode entry points turn into a
/// single InvalidArgument at the end (branch-free happy path).
class WireReader {
 public:
  explicit WireReader(const std::string& body)
      : p_(body.data()), end_(body.data() + body.size()) {}

  bool failed() const { return failed_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  uint8_t ReadU8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(*p_++);
  }
  uint16_t ReadU16() {
    if (!Require(2)) return 0;
    const uint16_t v = GetFixed16(p_);
    p_ += 2;
    return v;
  }
  uint32_t ReadU32() {
    if (!Require(4)) return 0;
    const uint32_t v = GetFixed32(p_);
    p_ += 4;
    return v;
  }
  uint64_t ReadU64() {
    if (!Require(8)) return 0;
    const uint64_t v = GetFixed64(p_);
    p_ += 8;
    return v;
  }
  double ReadF64() {
    if (!Require(8)) return 0.0;
    const double v = GetDouble(p_);
    p_ += 8;
    return v;
  }
  std::string ReadString() {
    const uint32_t n = ReadU32();
    if (!Require(n)) return std::string();
    std::string s(p_, n);
    p_ += n;
    return s;
  }
  sql::Value ReadValue() {
    switch (ReadU8()) {
      case static_cast<uint8_t>(sql::ValueType::kNull):
        return sql::Value::Null();
      case static_cast<uint8_t>(sql::ValueType::kInt):
        return sql::Value::Int(static_cast<int64_t>(ReadU64()));
      case static_cast<uint8_t>(sql::ValueType::kDouble):
        return sql::Value::Double(ReadF64());
      case static_cast<uint8_t>(sql::ValueType::kString):
        return sql::Value::Str(ReadString());
      default:
        failed_ = true;
        return sql::Value::Null();
    }
  }

  /// A frame with unconsumed payload bytes is malformed too — a peer
  /// speaking a newer dialect must version via new opcodes, not riders.
  Status Finish(const char* what) const {
    if (failed_ || remaining() != 0) {
      return Status::InvalidArgument(std::string("malformed ") + what +
                                     " frame");
    }
    return Status::OK();
  }

 private:
  bool Require(size_t n) {
    if (failed_ || remaining() < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
  bool failed_ = false;
};

}  // namespace

// --- Request encoding ----------------------------------------------------

void AppendExecuteFrame(const std::string& sql, std::string* dst) {
  std::string body;
  body.push_back(static_cast<char>(Opcode::kExecute));
  PutString(&body, sql);
  PutFrame(dst, body);
}

void AppendPrepareFrame(uint32_t stmt_id, const std::string& sql,
                        std::string* dst) {
  std::string body;
  body.push_back(static_cast<char>(Opcode::kPrepare));
  PutFixed32(&body, stmt_id);
  PutString(&body, sql);
  PutFrame(dst, body);
}

void AppendBindExecuteFrame(uint32_t stmt_id,
                            const std::vector<sql::Value>& binds,
                            std::string* dst) {
  std::string body;
  body.push_back(static_cast<char>(Opcode::kBindExecute));
  PutFixed32(&body, stmt_id);
  PutFixed16(&body, static_cast<uint16_t>(binds.size()));
  for (const sql::Value& v : binds) PutValue(&body, v);
  PutFrame(dst, body);
}

void AppendFlushFrame(std::string* dst) {
  std::string body(1, static_cast<char>(Opcode::kFlush));
  PutFrame(dst, body);
}

void AppendPingFrame(std::string* dst) {
  std::string body(1, static_cast<char>(Opcode::kPing));
  PutFrame(dst, body);
}

void AppendClosePreparedFrame(uint32_t stmt_id, std::string* dst) {
  std::string body;
  body.push_back(static_cast<char>(Opcode::kClosePrepared));
  PutFixed32(&body, stmt_id);
  PutFrame(dst, body);
}

// --- Response encoding ---------------------------------------------------

void AppendTableFrame(const sql::Table& table, std::string* dst) {
  std::string body;
  body.push_back(static_cast<char>(Opcode::kTable));
  PutFixed16(&body, static_cast<uint16_t>(table.columns.size()));
  for (const sql::Column& c : table.columns) {
    PutString(&body, c.name);
    body.push_back(static_cast<char>(c.type));
  }
  PutFixed32(&body, static_cast<uint32_t>(table.rows.size()));
  for (const auto& row : table.rows) {
    for (const sql::Value& v : row) PutValue(&body, v);
  }
  PutFrame(dst, body);
}

void AppendErrorFrame(const Status& status, std::string* dst) {
  std::string body;
  body.push_back(static_cast<char>(Opcode::kError));
  body.push_back(static_cast<char>(status.code()));
  PutString(&body, status.message());
  PutFrame(dst, body);
}

void AppendPreparedFrame(uint32_t stmt_id, uint16_t num_params,
                         std::string* dst) {
  std::string body;
  body.push_back(static_cast<char>(Opcode::kPrepared));
  PutFixed32(&body, stmt_id);
  PutFixed16(&body, num_params);
  PutFrame(dst, body);
}

void AppendPongFrame(std::string* dst) {
  std::string body(1, static_cast<char>(Opcode::kPong));
  PutFrame(dst, body);
}

// --- Framing -------------------------------------------------------------

FrameScan ScanFrame(const std::string& buf, size_t* offset,
                    std::string* body, uint32_t max_frame) {
  const size_t avail = buf.size() - *offset;
  if (avail < 4) return FrameScan::kNeedMore;
  const uint32_t len = GetFixed32(buf.data() + *offset);
  // A zero-length frame carries no opcode; treat as oversize-class poison
  // (the framing invariant is broken either way).
  if (len == 0 || len > max_frame) return FrameScan::kOversize;
  if (avail < 4 + static_cast<size_t>(len)) return FrameScan::kNeedMore;
  body->assign(buf, *offset + 4, len);
  *offset += 4 + static_cast<size_t>(len);
  return FrameScan::kFrame;
}

// --- Decoding ------------------------------------------------------------

StatusOr<Request> DecodeRequest(const std::string& body) {
  WireReader r(body);
  Request req;
  const uint8_t op = r.ReadU8();
  switch (op) {
    case static_cast<uint8_t>(Opcode::kExecute):
      req.op = Opcode::kExecute;
      req.sql = r.ReadString();
      HERMES_RETURN_NOT_OK(r.Finish("EXECUTE"));
      return req;
    case static_cast<uint8_t>(Opcode::kPrepare):
      req.op = Opcode::kPrepare;
      req.stmt_id = r.ReadU32();
      req.sql = r.ReadString();
      HERMES_RETURN_NOT_OK(r.Finish("PREPARE"));
      return req;
    case static_cast<uint8_t>(Opcode::kBindExecute): {
      req.op = Opcode::kBindExecute;
      req.stmt_id = r.ReadU32();
      const uint16_t n = r.ReadU16();
      req.binds.reserve(n);
      for (uint16_t i = 0; i < n && !r.failed(); ++i) {
        req.binds.push_back(r.ReadValue());
      }
      HERMES_RETURN_NOT_OK(r.Finish("BIND+EXECUTE"));
      return req;
    }
    case static_cast<uint8_t>(Opcode::kFlush):
      req.op = Opcode::kFlush;
      HERMES_RETURN_NOT_OK(r.Finish("FLUSH"));
      return req;
    case static_cast<uint8_t>(Opcode::kPing):
      req.op = Opcode::kPing;
      HERMES_RETURN_NOT_OK(r.Finish("PING"));
      return req;
    case static_cast<uint8_t>(Opcode::kClosePrepared):
      req.op = Opcode::kClosePrepared;
      req.stmt_id = r.ReadU32();
      HERMES_RETURN_NOT_OK(r.Finish("CLOSE PREPARED"));
      return req;
    default:
      return Status::InvalidArgument("unknown request opcode " +
                                     std::to_string(op));
  }
}

StatusOr<Response> DecodeResponse(const std::string& body) {
  WireReader r(body);
  Response resp;
  const uint8_t op = r.ReadU8();
  switch (op) {
    case static_cast<uint8_t>(Opcode::kTable): {
      resp.op = Opcode::kTable;
      const uint16_t ncols = r.ReadU16();
      resp.table.columns.reserve(ncols);
      for (uint16_t c = 0; c < ncols && !r.failed(); ++c) {
        std::string name = r.ReadString();
        const uint8_t type = r.ReadU8();
        if (type > static_cast<uint8_t>(sql::ValueType::kString)) {
          return Status::InvalidArgument("bad column type in TABLE frame");
        }
        resp.table.columns.emplace_back(std::move(name),
                                        static_cast<sql::ValueType>(type));
      }
      const uint32_t nrows = r.ReadU32();
      // Bound preallocation by the bytes actually present: a row is at
      // least ncols tag bytes, so a lying nrows cannot balloon memory.
      if (ncols > 0 &&
          static_cast<uint64_t>(nrows) * ncols > r.remaining()) {
        return Status::InvalidArgument("truncated TABLE frame");
      }
      resp.table.rows.reserve(nrows);
      for (uint32_t i = 0; i < nrows && !r.failed(); ++i) {
        std::vector<sql::Value> row;
        row.reserve(ncols);
        for (uint16_t c = 0; c < ncols && !r.failed(); ++c) {
          row.push_back(r.ReadValue());
        }
        resp.table.rows.push_back(std::move(row));
      }
      HERMES_RETURN_NOT_OK(r.Finish("TABLE"));
      return resp;
    }
    case static_cast<uint8_t>(Opcode::kError): {
      resp.op = Opcode::kError;
      const uint8_t code = r.ReadU8();
      if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
        return Status::InvalidArgument("bad status code in ERROR frame");
      }
      resp.code = static_cast<StatusCode>(code);
      resp.message = r.ReadString();
      HERMES_RETURN_NOT_OK(r.Finish("ERROR"));
      return resp;
    }
    case static_cast<uint8_t>(Opcode::kPrepared):
      resp.op = Opcode::kPrepared;
      resp.stmt_id = r.ReadU32();
      resp.num_params = r.ReadU16();
      HERMES_RETURN_NOT_OK(r.Finish("PREPARED"));
      return resp;
    case static_cast<uint8_t>(Opcode::kPong):
      resp.op = Opcode::kPong;
      HERMES_RETURN_NOT_OK(r.Finish("PONG"));
      return resp;
    default:
      return Status::InvalidArgument("unknown response opcode " +
                                     std::to_string(op));
  }
}

}  // namespace hermes::net
