#ifndef HERMES_NET_WIRE_H_
#define HERMES_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "sql/value.h"

namespace hermes::net {

/// \brief The Hermes wire protocol: length-prefixed binary frames.
///
/// Every message — request or response — is one frame:
///
///     u32  length   little-endian; bytes that follow (opcode + payload)
///     u8   opcode
///     ...  payload  opcode-specific, little-endian fixed-width fields
///
/// `length` counts the opcode byte, so the smallest frame (PING) is
/// 5 bytes on the wire with length = 1. Strings are `u32 byte-count +
/// raw bytes` (no terminator). Values are tagged: `u8 value-type`
/// (`sql::ValueType` numeric value) followed by nothing (null), an i64
/// (int), an IEEE double (double), or a string (string).
///
/// Request opcodes:
///   kExecute      string sql
///   kPrepare      u32 stmt_id + string sql        (client picks the id)
///   kBindExecute  u32 stmt_id + u16 nbinds + nbinds tagged values,
///                 bound to $1..$nbinds in order
///   kFlush        (empty)                          -- drain async ingest
///   kPing         (empty)
///   kClosePrepared u32 stmt_id                     -- drop a prepared stmt
///
/// Response opcodes (one response per request, in request order —
/// pipelining-safe):
///   kTable     encoded sql::Table: u16 ncols, ncols × (string name +
///              u8 column type); u32 nrows, nrows × ncols tagged values
///   kError     u8 StatusCode + string message
///   kPrepared  u32 stmt_id + u16 num_params        (answers kPrepare)
///   kPong      (empty)                             (answers kPing and
///              kClosePrepared)
///
/// The protocol is strictly client-speaks-first request/response; the
/// server never pushes unsolicited frames.
enum class Opcode : uint8_t {
  // Requests.
  kExecute = 0x01,
  kPrepare = 0x02,
  kBindExecute = 0x03,
  kFlush = 0x04,
  kPing = 0x05,
  kClosePrepared = 0x06,
  // Responses.
  kTable = 0x81,
  kError = 0x82,
  kPrepared = 0x83,
  kPong = 0x84,
};

/// Frames larger than this are protocol errors: the peer is broken (or
/// malicious), and since the stream can no longer be framed reliably the
/// connection is closed after an error response. 16 MiB comfortably fits
/// every result a QUT / S2T statement produces today.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// One decoded request frame.
struct Request {
  Opcode op = Opcode::kPing;
  std::string sql;                ///< kExecute / kPrepare.
  uint32_t stmt_id = 0;           ///< kPrepare / kBindExecute / kClosePrepared.
  std::vector<sql::Value> binds;  ///< kBindExecute, $1.. in order.
};

/// One decoded response frame.
struct Response {
  Opcode op = Opcode::kPong;
  sql::Table table;        ///< kTable.
  StatusCode code = StatusCode::kOk;  ///< kError.
  std::string message;     ///< kError.
  uint32_t stmt_id = 0;    ///< kPrepared.
  uint16_t num_params = 0; ///< kPrepared.
};

// --- Encoding (appends one complete frame to `*dst`) ---------------------

void AppendExecuteFrame(const std::string& sql, std::string* dst);
void AppendPrepareFrame(uint32_t stmt_id, const std::string& sql,
                        std::string* dst);
void AppendBindExecuteFrame(uint32_t stmt_id,
                            const std::vector<sql::Value>& binds,
                            std::string* dst);
void AppendFlushFrame(std::string* dst);
void AppendPingFrame(std::string* dst);
void AppendClosePreparedFrame(uint32_t stmt_id, std::string* dst);

void AppendTableFrame(const sql::Table& table, std::string* dst);
void AppendErrorFrame(const Status& status, std::string* dst);
void AppendPreparedFrame(uint32_t stmt_id, uint16_t num_params,
                         std::string* dst);
void AppendPongFrame(std::string* dst);

// --- Framing -------------------------------------------------------------

/// Result of scanning a read buffer for one complete frame.
enum class FrameScan {
  kNeedMore,   ///< Partial frame; read more bytes.
  kFrame,      ///< One complete frame extracted.
  kOversize,   ///< Declared length exceeds `max_frame`: unrecoverable.
};

/// Scans `buf[offset..)` for one complete frame. On `kFrame`, sets
/// `*body` to the frame body (opcode + payload, length prefix stripped)
/// and advances `*offset` past the frame. On `kOversize` the declared
/// length itself is poison — the caller must stop framing this stream.
FrameScan ScanFrame(const std::string& buf, size_t* offset,
                    std::string* body, uint32_t max_frame = kMaxFrameBytes);

// --- Decoding (frame body: opcode + payload, no length prefix) -----------

/// Decodes a request frame body. Unknown opcodes and truncated / trailing
/// payload bytes yield InvalidArgument — the connection survives (the
/// error is answered in-order like any statement error).
StatusOr<Request> DecodeRequest(const std::string& body);

/// Decodes a response frame body (client side).
StatusOr<Response> DecodeResponse(const std::string& body);

}  // namespace hermes::net

#endif  // HERMES_NET_WIRE_H_
