#ifndef HERMES_NET_NET_SERVER_H_
#define HERMES_NET_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "net/wire.h"
#include "service/client_session.h"
#include "service/server.h"
#include "service/service_config.h"
#include "sql/statement_executor.h"

namespace hermes::net {

struct NetServerOptions {
  /// IPv4 address to bind; loopback by default (a reverse proxy or mesh
  /// fronts public traffic in the target deployment).
  std::string listen_addr = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via `port()`.
  uint16_t port = 0;
  /// Hard per-frame cap; a peer declaring more is disconnected (the
  /// stream can no longer be framed once the prefix is untrusted).
  uint32_t max_frame_bytes = kMaxFrameBytes;
  int backlog = 128;
  /// Connections that have sent no request bytes for this long are
  /// closed through the peer-EOF path: already-queued requests still
  /// execute and their responses still flush before the socket closes.
  /// 0 (the default) disables the sweep — the historical behavior.
  int idle_timeout_ms = 0;
};

/// Projects a validated `service::ServiceConfig`'s network scalars into
/// the net layer's option struct (`max_frame_bytes == 0` resolves to the
/// wire protocol's default cap).
NetServerOptions MakeNetServerOptions(const service::ServiceConfig& config);

/// \brief TCP front end for any statement backend: accepts connections,
/// decodes wire-protocol frames, and executes them on per-connection
/// `sql::StatementExecutor`s produced by a session factory — an
/// in-process `service::Server` session or a shard coordinator session,
/// indistinguishable on the wire.
///
/// Threading (see docs/ARCHITECTURE.md "Wire protocol"):
///
///  - One event-loop thread owns every socket: it accepts, reads and
///    frames request bytes, and flushes response bytes — non-blocking
///    fds throughout, with partial reads and short writes resumed on the
///    next poll cycle.
///  - Each connection owns one worker thread running its
///    statement executor (the session layer is one-thread-per-client by
///    contract, like a PostgreSQL backend). The loop hands decoded
///    requests to the worker over a small locked queue; the worker
///    appends encoded responses to the connection outbox and wakes the
///    loop through a self-pipe. Responses therefore flow back strictly
///    in request order: pipelined clients may have many requests in
///    flight, and answers never reorder.
///  - A request that fails to decode (unknown opcode, truncated payload)
///    still travels the queue as an error, so its ERROR response stays
///    in pipeline order and the connection survives. An oversize length
///    prefix is fatal to the connection only: one ERROR response is
///    flushed, then the socket closes; the server and every other
///    connection keep running.
///
/// Whatever backend the factory's executors reference must outlive the
/// NetServer. Destruction (or `Shutdown()`) stops accepting, aborts idle
/// workers, finishes the request each busy worker is executing, and
/// closes every socket.
class NetServer {
 public:
  /// Produces one statement executor per accepted connection.
  using SessionFactory =
      std::function<std::unique_ptr<sql::StatementExecutor>()>;

  static StatusOr<std::unique_ptr<NetServer>> Start(SessionFactory factory,
                                                    NetServerOptions options);
  /// Convenience: front an in-process `service::Server` directly.
  static StatusOr<std::unique_ptr<NetServer>> Start(service::Server* server,
                                                    NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Stops the acceptor, closes every connection, joins all threads.
  /// Idempotent.
  void Shutdown();

  /// The bound port (resolves option `port == 0` to the kernel's pick).
  uint16_t port() const { return port_; }

 private:
  /// One accepted socket: loop-thread buffers plus the locked seam to
  /// its worker thread.
  struct Connection {
    explicit Connection(int fd_in) : fd(fd_in) {}

    // --- Event-loop-thread-only state (no lock needed) ---
    int fd;
    std::string rbuf;        ///< Unconsumed request bytes.
    size_t roff = 0;         ///< Frames before this offset are consumed.
    std::string wbuf;        ///< Response bytes being written.
    size_t woff = 0;         ///< Bytes of `wbuf` already on the wire.
    bool stop_reading = false;  ///< Framing poisoned or peer EOF.
    /// When the last inbound bytes arrived (accept counts); drives the
    /// idle sweep. steady_clock so wall-clock jumps cannot expire peers.
    std::chrono::steady_clock::time_point last_activity;

    // --- Loop <-> worker seam ---
    common::Mutex mu;
    std::condition_variable cv;  ///< Signals the worker: work / done / abort.
    /// Decoded requests in arrival order; a failed decode rides along as
    /// its error so responses keep pipeline order.
    std::deque<StatusOr<Request>> queue GUARDED_BY(mu);
    /// No further requests will ever be queued (peer EOF or poisoned
    /// framing): the worker drains and exits.
    bool input_done GUARDED_BY(mu) = false;
    /// Server shutdown: the worker abandons queued requests and exits.
    bool abort GUARDED_BY(mu) = false;
    /// Encoded response frames not yet moved to `wbuf`.
    std::string outbox GUARDED_BY(mu);
    bool worker_done GUARDED_BY(mu) = false;

    // --- Worker-thread-only state ---
    std::thread worker;
    std::unique_ptr<sql::StatementExecutor> session;
    /// Client-chosen wire statement ids mapped to the executor's own
    /// handles; re-PREPARE on a wire id replaces (and closes) the old one.
    std::map<uint32_t, sql::PreparedHandle> prepared;
  };

  NetServer(SessionFactory factory, NetServerOptions options);

  Status Listen();
  void LoopThread();
  void WorkerThread(Connection* conn);
  /// Executes one decoded request, appending the response frame to `*out`.
  void HandleRequest(Connection* conn, const StatusOr<Request>& req,
                     std::string* out);
  void AcceptReady();
  /// Reads available bytes, frames them, queues decoded requests.
  void ReadReady(Connection* conn);
  /// Writes as much of `wbuf` as the socket accepts.
  void WriteReady(Connection* conn);
  void CloseConnection(Connection* conn);
  void WakeLoop();

  SessionFactory factory_;
  NetServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_rd_ = -1;  ///< Self-pipe: workers & Shutdown wake the poll loop.
  int wake_wr_ = -1;
  std::atomic<bool> stop_{false};
  std::thread loop_;
  /// Owned by the loop thread after Start (only the loop touches it).
  std::vector<std::unique_ptr<Connection>> conns_;
  /// Serializes Shutdown against itself (dtor + explicit call).
  common::Mutex shutdown_mu_;
  bool shut_down_ GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace hermes::net

#endif  // HERMES_NET_NET_SERVER_H_
