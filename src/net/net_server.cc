#include "net/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace hermes::net {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

bool WouldBlock(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

NetServerOptions MakeNetServerOptions(const service::ServiceConfig& config) {
  NetServerOptions opts;
  opts.listen_addr = config.listen_addr;
  opts.port = config.port;
  opts.max_frame_bytes =
      config.max_frame_bytes == 0 ? kMaxFrameBytes : config.max_frame_bytes;
  opts.backlog = config.backlog;
  opts.idle_timeout_ms = config.idle_timeout_ms;
  return opts;
}

NetServer::NetServer(SessionFactory factory, NetServerOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {}

StatusOr<std::unique_ptr<NetServer>> NetServer::Start(
    SessionFactory factory, NetServerOptions options) {
  if (!factory) {
    return Status::InvalidArgument("NetServer requires a session factory");
  }
  std::unique_ptr<NetServer> net(
      new NetServer(std::move(factory), std::move(options)));
  HERMES_RETURN_NOT_OK(net->Listen());
  net->loop_ = std::thread([raw = net.get()] { raw->LoopThread(); });
  return net;
}

StatusOr<std::unique_ptr<NetServer>> NetServer::Start(
    service::Server* server, NetServerOptions options) {
  return Start(
      [server] { return service::MakeStatementExecutor(server->Connect()); },
      std::move(options));
}

Status NetServer::Listen() {
  int pipefd[2];
  if (pipe(pipefd) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  HERMES_RETURN_NOT_OK(SetNonBlocking(wake_rd_));

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.listen_addr.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " +
                                   options_.listen_addr);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError("bind(" + options_.listen_addr + ":" +
                           std::to_string(options_.port) +
                           "): " + std::strerror(errno));
  }
  if (listen(listen_fd_, options_.backlog) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  HERMES_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

NetServer::~NetServer() { Shutdown(); }

void NetServer::Shutdown() {
  {
    common::MutexLock lock(&shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stop_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  // The loop has exited: conns_ is ours now. Abort workers (they finish
  // at most the statement they are executing), join, and close sockets.
  for (auto& conn : conns_) {
    {
      common::MutexLock lock(&conn->mu);
      conn->abort = true;
    }
    conn->cv.notify_all();
  }
  for (auto& conn : conns_) {
    if (conn->worker.joinable()) conn->worker.join();
    if (conn->fd >= 0) close(conn->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_rd_ >= 0) close(wake_rd_);
  if (wake_wr_ >= 0) close(wake_wr_);
  listen_fd_ = wake_rd_ = wake_wr_ = -1;
}

void NetServer::WakeLoop() {
  const char b = 'w';
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  ssize_t ignored = write(wake_wr_, &b, 1);
  (void)ignored;
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void NetServer::LoopThread() {
  while (!stop_.load(std::memory_order_acquire)) {
    // Move worker-produced response bytes into the write buffers and
    // reap connections whose worker finished and output fully flushed.
    for (size_t i = 0; i < conns_.size();) {
      Connection* conn = conns_[i].get();
      bool done;
      {
        common::MutexLock lock(&conn->mu);
        if (!conn->outbox.empty()) {
          conn->wbuf.append(conn->outbox);
          conn->outbox.clear();
        }
        done = conn->worker_done;
      }
      if (!conn->wbuf.empty()) WriteReady(conn);
      if (done && conn->woff == conn->wbuf.size()) {
        bool empty_outbox;
        {
          common::MutexLock lock(&conn->mu);
          empty_outbox = conn->outbox.empty();
        }
        if (empty_outbox) {
          CloseConnection(conn);
          conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
          continue;
        }
      }
      ++i;
    }

    if (options_.idle_timeout_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      for (auto& conn : conns_) {
        if (conn->stop_reading) continue;
        const auto idle_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - conn->last_activity)
                .count();
        if (idle_ms < options_.idle_timeout_ms) continue;
        // Expire through the peer-EOF path: queued requests still execute
        // and their responses still flush; the reaper above closes the
        // socket once the worker drains and the output hits the wire.
        conn->stop_reading = true;
        {
          common::MutexLock lock(&conn->mu);
          conn->input_done = true;
        }
        conn->cv.notify_all();
      }
    }

    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_rd_, POLLIN, 0});
    for (const auto& conn : conns_) {
      short events = 0;
      if (!conn->stop_reading) events |= POLLIN;
      if (conn->woff < conn->wbuf.size()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }

    // A sub-second idle timeout needs a sub-second sweep cadence.
    const int timeout_ms =
        options_.idle_timeout_ms > 0 ? std::min(1000, options_.idle_timeout_ms)
                                     : 1000;
    const int n = poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0 && errno != EINTR) break;
    if (n <= 0) continue;

    if (fds[1].revents & POLLIN) {
      char buf[256];
      while (read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) AcceptReady();
    // conns_ may have grown (accept) but existing order is stable; only
    // the first `fds.size() - 2` entries were polled.
    for (size_t i = 0; i + 2 < fds.size() && i < conns_.size(); ++i) {
      Connection* conn = conns_[i].get();
      if (fds[i + 2].fd != conn->fd) continue;  // defensive: stale slot
      if (fds[i + 2].revents & (POLLIN | POLLHUP | POLLERR)) {
        ReadReady(conn);
      }
      if (fds[i + 2].revents & POLLOUT) WriteReady(conn);
    }
  }
}

void NetServer::AcceptReady() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: poll again later.
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(fd);
    conn->last_activity = std::chrono::steady_clock::now();
    conn->session = factory_();
    Connection* raw = conn.get();
    conn->worker = std::thread([this, raw] { WorkerThread(raw); });
    conns_.push_back(std::move(conn));
  }
}

void NetServer::ReadReady(Connection* conn) {
  bool input_closed = false;
  char buf[16 * 1024];
  for (;;) {
    const ssize_t r = read(conn->fd, buf, sizeof(buf));
    if (r > 0) {
      conn->rbuf.append(buf, static_cast<size_t>(r));
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && WouldBlock(errno)) break;
    // Peer EOF (r == 0) or hard error: either way no more requests will
    // arrive. Already-queued requests still execute and their responses
    // still flush — a client may shutdown(SHUT_WR) then read the tail.
    input_closed = true;
    break;
  }

  // Frame everything available; decoded requests (and decode errors)
  // queue to the worker in arrival order.
  bool queued = false;
  {
    common::MutexLock lock(&conn->mu);
    std::string body;
    for (;;) {
      const FrameScan scan = ScanFrame(conn->rbuf, &conn->roff, &body,
                                       options_.max_frame_bytes);
      if (scan == FrameScan::kNeedMore) break;
      if (scan == FrameScan::kOversize) {
        // The length prefix itself is untrustworthy: answer once, then
        // never frame this stream again; the connection closes after
        // the error flushes.
        conn->queue.push_back(Status::InvalidArgument(
            "frame exceeds max_frame_bytes (" +
            std::to_string(options_.max_frame_bytes) + ")"));
        conn->stop_reading = true;
        conn->input_done = true;
        queued = true;
        break;
      }
      conn->queue.push_back(DecodeRequest(body));
      queued = true;
    }
    if (input_closed && !conn->input_done) {
      conn->stop_reading = true;
      conn->input_done = true;
      queued = true;
    }
  }
  // Consumed bytes compact away so a pipelining client cannot grow the
  // buffer unboundedly across requests.
  if (conn->roff > 0) {
    conn->rbuf.erase(0, conn->roff);
    conn->roff = 0;
  }
  if (queued) conn->cv.notify_all();
}

void NetServer::WriteReady(Connection* conn) {
  while (conn->woff < conn->wbuf.size()) {
    const ssize_t w =
        send(conn->fd, conn->wbuf.data() + conn->woff,
             conn->wbuf.size() - conn->woff, MSG_NOSIGNAL);
    if (w > 0) {
      conn->woff += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && WouldBlock(errno)) return;  // Short write: resume on POLLOUT.
    // Peer is gone; drop the remaining output and let the reaper close.
    conn->wbuf.clear();
    conn->woff = 0;
    conn->stop_reading = true;
    {
      common::MutexLock lock(&conn->mu);
      conn->input_done = true;
    }
    conn->cv.notify_all();
    return;
  }
  if (conn->woff == conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->woff = 0;
  }
}

void NetServer::CloseConnection(Connection* conn) {
  {
    common::MutexLock lock(&conn->mu);
    conn->abort = true;
  }
  conn->cv.notify_all();
  if (conn->worker.joinable()) conn->worker.join();
  if (conn->fd >= 0) close(conn->fd);
  conn->fd = -1;
}

// ---------------------------------------------------------------------------
// Per-connection worker
// ---------------------------------------------------------------------------

void NetServer::WorkerThread(Connection* conn) {
  for (;;) {
    StatusOr<Request> req{Request{}};
    {
      common::MutexLock lock(&conn->mu);
      while (conn->queue.empty() && !conn->input_done && !conn->abort) {
        lock.Wait(conn->cv);
      }
      if (conn->abort || (conn->queue.empty() && conn->input_done)) {
        conn->worker_done = true;
        break;
      }
      req = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    std::string out;
    HandleRequest(conn, req, &out);
    {
      common::MutexLock lock(&conn->mu);
      conn->outbox.append(out);
    }
    WakeLoop();
  }
  WakeLoop();
}

void NetServer::HandleRequest(Connection* conn, const StatusOr<Request>& req,
                              std::string* out) {
  if (!req.ok()) {
    AppendErrorFrame(req.status(), out);
    return;
  }
  const Request& r = *req;
  switch (r.op) {
    case Opcode::kPing:
      AppendPongFrame(out);
      return;
    case Opcode::kExecute:
    case Opcode::kFlush: {
      // FLUSH is spelled as a statement so its ack table — and its
      // drain-the-ingest-queue semantics — match the SQL path exactly.
      StatusOr<sql::Table> result =
          conn->session->Execute(r.op == Opcode::kFlush ? "FLUSH" : r.sql);
      if (!result.ok()) {
        AppendErrorFrame(result.status(), out);
      } else {
        AppendTableFrame(*result, out);
      }
      return;
    }
    case Opcode::kPrepare: {
      StatusOr<sql::PreparedHandle> prepared = conn->session->Prepare(r.sql);
      if (!prepared.ok()) {
        AppendErrorFrame(prepared.status(), out);
        return;
      }
      // Re-PREPARE on a wire id replaces the old statement; release the
      // executor's handle so remote backends can reclaim theirs too.
      auto it = conn->prepared.find(r.stmt_id);
      if (it != conn->prepared.end()) {
        (void)conn->session->ClosePrepared(it->second.id);
      }
      conn->prepared.insert_or_assign(r.stmt_id, *prepared);
      AppendPreparedFrame(r.stmt_id,
                          static_cast<uint16_t>(prepared->num_params), out);
      return;
    }
    case Opcode::kBindExecute: {
      auto it = conn->prepared.find(r.stmt_id);
      if (it == conn->prepared.end()) {
        AppendErrorFrame(
            Status::NotFound("no prepared statement with id " +
                             std::to_string(r.stmt_id)),
            out);
        return;
      }
      StatusOr<sql::Table> result =
          conn->session->BindExecute(it->second.id, r.binds);
      if (!result.ok()) {
        AppendErrorFrame(result.status(), out);
      } else {
        AppendTableFrame(*result, out);
      }
      return;
    }
    case Opcode::kClosePrepared: {
      auto it = conn->prepared.find(r.stmt_id);
      if (it == conn->prepared.end()) {
        AppendErrorFrame(
            Status::NotFound("no prepared statement with id " +
                             std::to_string(r.stmt_id)),
            out);
        return;
      }
      const Status st = conn->session->ClosePrepared(it->second.id);
      conn->prepared.erase(it);
      if (!st.ok()) {
        AppendErrorFrame(st, out);
      } else {
        AppendPongFrame(out);
      }
      return;
    }
    default:
      AppendErrorFrame(Status::InvalidArgument("response opcode in request"),
                       out);
      return;
  }
}

}  // namespace hermes::net
