#ifndef HERMES_NET_CLIENT_H_
#define HERMES_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "net/wire.h"
#include "sql/statement_executor.h"
#include "sql/value.h"

namespace hermes::net {

/// \brief Blocking TCP client for the Hermes wire protocol.
///
/// The synchronous calls (`Execute`, `Prepare`, `BindExecute`, `Flush`,
/// `Ping`) send one request and wait for its response. For pipelining,
/// use the split halves: `Send*` queues frames onto the socket without
/// waiting, and `ReadResponse` pops the next response in request order.
///
/// A `kError` response surfaces as a non-OK Status carrying the server's
/// code and message — so a socket client observes exactly what an
/// in-process `ClientSession` caller would (same code, same message).
///
/// Not thread-safe: one Client per thread, like the session it fronts.
class Client {
 public:
  static StatusOr<std::unique_ptr<Client>> Connect(const std::string& host,
                                                   uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Synchronous round-trips ---
  StatusOr<sql::Table> Execute(const std::string& sql);
  /// Registers `sql` under the client-chosen `stmt_id` (re-preparing an
  /// id replaces it); returns the statement's parameter count.
  StatusOr<uint16_t> Prepare(uint32_t stmt_id, const std::string& sql);
  /// Binds `$1..$n` to `binds` in order and executes.
  StatusOr<sql::Table> BindExecute(uint32_t stmt_id,
                                   const std::vector<sql::Value>& binds);
  /// Drains the server's async ingest queue (the FLUSH statement).
  StatusOr<sql::Table> Flush();
  Status Ping();
  /// Drops the statement registered under `stmt_id`; later BindExecute
  /// calls on it fail with NotFound, exactly like every other backend.
  Status ClosePrepared(uint32_t stmt_id);

  // --- Pipelined halves ---
  Status SendExecute(const std::string& sql);
  Status SendPrepare(uint32_t stmt_id, const std::string& sql);
  Status SendBindExecute(uint32_t stmt_id,
                         const std::vector<sql::Value>& binds);
  Status SendFlush();
  Status SendPing();
  Status SendClosePrepared(uint32_t stmt_id);
  /// Writes raw bytes to the socket verbatim — torture-test hook for
  /// malformed frames and deliberately dribbled partial writes.
  Status SendRaw(const void* data, size_t size);

  /// Blocks for the next response frame, in request order.
  StatusOr<Response> ReadResponse();

  /// Expects the next response to be a table (or error) — the decoded
  /// form of `Execute`'s reply for a previously pipelined request.
  StatusOr<sql::Table> ReadTable();

  /// Half-closes the write side (`shutdown(SHUT_WR)`): the server drains
  /// queued requests, flushes their responses, then closes.
  void CloseWrite();

  /// Bounds how long `ReadResponse` (and every synchronous round-trip)
  /// waits for the next response byte. 0 (the default) blocks forever —
  /// the historical behavior. On expiry the call fails with an
  /// `IOError` and the connection should be abandoned: the
  /// response stream's framing is still intact, but request/response
  /// pairing is no longer knowable.
  void set_receive_timeout_ms(int ms) { receive_timeout_ms_ = ms; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_;
  std::string rbuf_;
  size_t roff_ = 0;
  int receive_timeout_ms_ = 0;  ///< 0 = no deadline.
};

/// Wraps a connected wire client in the backend-neutral
/// `sql::StatementExecutor` interface (owning the client). Prepare maps
/// directly onto the wire protocol's client-chosen statement ids, so a
/// remote backend is indistinguishable from an in-process one at the
/// statement API.
std::unique_ptr<sql::StatementExecutor> MakeStatementExecutor(
    std::unique_ptr<Client> client);

}  // namespace hermes::net

#endif  // HERMES_NET_CLIENT_H_
