#include "core/s2t_clustering.h"

#include <chrono>

#include "rtree/str_bulk_load.h"
#include "storage/env.h"

namespace hermes::core {

namespace {
int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void S2TTimings::ExportTo(exec::ExecStats* stats) const {
  stats->RecordPhaseUs("s2t_arena_build", arena_build_us);
  stats->RecordPhaseUs("s2t_index_build", index_build_us);
  stats->RecordPhaseUs("s2t_voting", voting_us);
  stats->RecordPhaseUs("s2t_segmentation", segmentation_us);
  stats->RecordPhaseUs("s2t_sampling", sampling_us);
  stats->RecordPhaseUs("s2t_clustering", clustering_us);
}

StatusOr<S2TResult> S2TClustering::Run(const traj::TrajectoryStore& store,
                                       exec::ExecContext* ctx) const {
  S2TTimings timings;
  int64_t t0 = NowUs();
  const traj::SegmentArena arena = traj::SegmentArena::Build(store, ctx);
  timings.arena_build_us = NowUs() - t0;

  if (!params_.use_index) {
    return RunPhases(arena, store, nullptr, timings, ctx);
  }
  auto env = storage::Env::NewMemEnv();
  t0 = NowUs();
  HERMES_ASSIGN_OR_RETURN(
      std::unique_ptr<rtree::RTree3D> index,
      rtree::BuildSegmentIndex(env.get(), "s2t.idx", arena,
                               /*fill_factor=*/0.9, /*cache_pages=*/512,
                               ctx));
  timings.index_build_us = NowUs() - t0;
  return RunPhases(arena, store, index.get(), timings, ctx);
}

StatusOr<S2TResult> S2TClustering::RunWithIndex(
    const traj::TrajectoryStore& store, const rtree::RTree3D& index,
    exec::ExecContext* ctx) const {
  S2TTimings timings;
  const int64_t t0 = NowUs();
  const traj::SegmentArena arena = traj::SegmentArena::Build(store, ctx);
  timings.arena_build_us = NowUs() - t0;
  return RunPhases(arena, store, &index, timings, ctx);
}

StatusOr<S2TResult> S2TClustering::RunPhases(const traj::SegmentArena& arena,
                                             const traj::TrajectoryStore& store,
                                             const rtree::RTree3D* index,
                                             S2TTimings timings,
                                             exec::ExecContext* ctx) const {
  S2TResult result;
  result.timings = timings;

  // Phase 1a: voting.
  int64_t t0 = NowUs();
  if (index != nullptr) {
    HERMES_ASSIGN_OR_RETURN(
        result.voting,
        voting::ComputeVotingIndexed(arena, store, *index, params_.voting,
                                     ctx));
  } else {
    HERMES_ASSIGN_OR_RETURN(
        result.voting,
        voting::ComputeVotingNaive(arena, store, params_.voting, ctx));
  }
  result.timings.voting_us = NowUs() - t0;

  // Phase 1b: segmentation into homogeneous sub-trajectories.
  t0 = NowUs();
  result.sub_trajectories =
      segmentation::SegmentStore(store, result.voting, params_.segmentation);
  result.timings.segmentation_us = NowUs() - t0;

  // Phase 2a: sampling of representatives.
  t0 = NowUs();
  result.representatives = sampling::SelectRepresentatives(
      result.sub_trajectories, params_.sampling);
  result.timings.sampling_us = NowUs() - t0;

  // Phase 2b: greedy clustering + outlier isolation.
  t0 = NowUs();
  result.clustering = clustering::ClusterAroundRepresentatives(
      result.sub_trajectories, result.representatives, params_.clustering);
  result.timings.clustering_us = NowUs() - t0;

  if (ctx != nullptr) {
    auto& stats = ctx->stats();
    stats.RecordPhaseUs("s2t_voting", result.timings.voting_us);
    stats.RecordPhaseUs("s2t_segmentation", result.timings.segmentation_us);
    stats.RecordPhaseUs("s2t_sampling", result.timings.sampling_us);
    stats.RecordPhaseUs("s2t_clustering", result.timings.clustering_us);
    stats.RecordPhaseUs("s2t_index_build", result.timings.index_build_us);
    stats.RecordPhaseUs("s2t_arena_build", result.timings.arena_build_us);
  }
  return result;
}

}  // namespace hermes::core
