#include "core/s2t_clustering.h"

#include <chrono>

#include "rtree/str_bulk_load.h"
#include "storage/env.h"

namespace hermes::core {

namespace {
int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void S2TTimings::ExportTo(exec::ExecStats* stats) const {
  stats->RecordPhaseUs("s2t_arena_build", arena_build_us);
  stats->RecordPhaseUs("s2t_index_build", index_build_us);
  stats->RecordPhaseUs("s2t_voting", voting_us);
  stats->RecordPhaseUs("s2t_voting_probe", voting_probe_us);
  stats->RecordPhaseUs("s2t_voting_kernel", voting_kernel_us);
  stats->RecordPhaseUs("s2t_segmentation", segmentation_us);
  stats->RecordPhaseUs("s2t_segmentation_dp", segmentation_dp_us);
  stats->RecordPhaseUs("s2t_segmentation_materialize",
                       segmentation_materialize_us);
  stats->RecordPhaseUs("s2t_sampling", sampling_us);
  stats->RecordPhaseUs("s2t_clustering", clustering_us);
}

StatusOr<S2TResult> S2TClustering::Run(const traj::TrajectoryStore& store,
                                       exec::ExecContext* ctx) const {
  S2TTimings timings;
  int64_t t0 = NowUs();
  const traj::SegmentArena arena = traj::SegmentArena::Build(store, ctx);
  timings.arena_build_us = NowUs() - t0;

  if (!params_.use_index) {
    return RunPhases(arena, store, nullptr, nullptr, timings, ctx);
  }
  auto env = storage::Env::NewMemEnv();
  t0 = NowUs();
  HERMES_ASSIGN_OR_RETURN(
      std::unique_ptr<rtree::RTree3D> index,
      rtree::BuildSegmentIndex(env.get(), "s2t.idx", arena,
                               /*fill_factor=*/0.9, /*cache_pages=*/512,
                               ctx));
  timings.index_build_us = NowUs() - t0;
  // The freshly bulk-loaded (and flushed) file backs the parallel probe's
  // per-chunk read handles.
  const voting::IndexProbeSource probe{env.get(), "s2t.idx",
                                       /*cache_pages=*/512};
  return RunPhases(arena, store, index.get(), &probe, timings, ctx);
}

StatusOr<S2TResult> S2TClustering::RunWithIndex(
    const traj::TrajectoryStore& store, const rtree::RTree3D& index,
    exec::ExecContext* ctx) const {
  S2TTimings timings;
  const int64_t t0 = NowUs();
  const traj::SegmentArena arena = traj::SegmentArena::Build(store, ctx);
  timings.arena_build_us = NowUs() - t0;
  return RunPhases(arena, store, &index, nullptr, timings, ctx);
}

StatusOr<S2TResult> S2TClustering::RunPhases(
    const traj::SegmentArena& arena, const traj::TrajectoryStore& store,
    const rtree::RTree3D* index, const voting::IndexProbeSource* probe,
    S2TTimings timings, exec::ExecContext* ctx) const {
  S2TResult result;
  result.timings = timings;

  // Phase 1a: voting.
  int64_t t0 = NowUs();
  if (index != nullptr) {
    HERMES_ASSIGN_OR_RETURN(
        result.voting,
        voting::ComputeVotingIndexed(arena, store, *index, params_.voting,
                                     ctx, probe));
  } else {
    HERMES_ASSIGN_OR_RETURN(
        result.voting,
        voting::ComputeVotingNaive(arena, store, params_.voting, ctx));
  }
  result.timings.voting_us = NowUs() - t0;
  result.timings.voting_probe_us = result.voting.probe_us;
  result.timings.voting_kernel_us = result.voting.kernel_us;

  // Phase 1b: segmentation into homogeneous sub-trajectories.
  t0 = NowUs();
  segmentation::SegmentationTimings seg_timings;
  result.sub_trajectories = segmentation::SegmentStore(
      store, result.voting, params_.segmentation, ctx, &seg_timings);
  result.timings.segmentation_us = NowUs() - t0;
  result.timings.segmentation_dp_us = seg_timings.dp_us;
  result.timings.segmentation_materialize_us = seg_timings.materialize_us;

  // Phase 2a: sampling of representatives.
  t0 = NowUs();
  result.representatives = sampling::SelectRepresentatives(
      result.sub_trajectories, params_.sampling);
  result.timings.sampling_us = NowUs() - t0;

  // Phase 2b: greedy clustering + outlier isolation.
  t0 = NowUs();
  result.clustering = clustering::ClusterAroundRepresentatives(
      result.sub_trajectories, result.representatives, params_.clustering);
  result.timings.clustering_us = NowUs() - t0;

  if (ctx != nullptr) result.timings.ExportTo(&ctx->stats());
  return result;
}

}  // namespace hermes::core
