#include "core/s2t_clustering.h"

#include <chrono>

#include "rtree/str_bulk_load.h"
#include "storage/env.h"

namespace hermes::core {

namespace {
int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

StatusOr<S2TResult> S2TClustering::Run(
    const traj::TrajectoryStore& store) const {
  S2TTimings timings;
  if (!params_.use_index) {
    return RunPhases(store, nullptr, timings);
  }
  auto env = storage::Env::NewMemEnv();
  const int64_t t0 = NowUs();
  HERMES_ASSIGN_OR_RETURN(
      std::unique_ptr<rtree::RTree3D> index,
      rtree::BuildSegmentIndex(env.get(), "s2t.idx", store));
  timings.index_build_us = NowUs() - t0;
  return RunPhases(store, index.get(), timings);
}

StatusOr<S2TResult> S2TClustering::RunWithIndex(
    const traj::TrajectoryStore& store, const rtree::RTree3D& index) const {
  return RunPhases(store, &index, S2TTimings{});
}

StatusOr<S2TResult> S2TClustering::RunPhases(const traj::TrajectoryStore& store,
                                             const rtree::RTree3D* index,
                                             S2TTimings timings) const {
  S2TResult result;
  result.timings = timings;

  // Phase 1a: voting.
  int64_t t0 = NowUs();
  if (index != nullptr) {
    HERMES_ASSIGN_OR_RETURN(
        result.voting,
        voting::ComputeVotingIndexed(store, *index, params_.voting));
  } else {
    HERMES_ASSIGN_OR_RETURN(
        result.voting, voting::ComputeVotingNaive(store, params_.voting));
  }
  result.timings.voting_us = NowUs() - t0;

  // Phase 1b: segmentation into homogeneous sub-trajectories.
  t0 = NowUs();
  result.sub_trajectories =
      segmentation::SegmentStore(store, result.voting, params_.segmentation);
  result.timings.segmentation_us = NowUs() - t0;

  // Phase 2a: sampling of representatives.
  t0 = NowUs();
  result.representatives = sampling::SelectRepresentatives(
      result.sub_trajectories, params_.sampling);
  result.timings.sampling_us = NowUs() - t0;

  // Phase 2b: greedy clustering + outlier isolation.
  t0 = NowUs();
  result.clustering = clustering::ClusterAroundRepresentatives(
      result.sub_trajectories, result.representatives, params_.clustering);
  result.timings.clustering_us = NowUs() - t0;
  return result;
}

}  // namespace hermes::core
