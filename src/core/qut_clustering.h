#ifndef HERMES_CORE_QUT_CLUSTERING_H_
#define HERMES_CORE_QUT_CLUSTERING_H_

#include <vector>

#include "common/statusor.h"
#include "core/retratree.h"

namespace hermes::core {

/// \brief Query-time parameters of QuT-Clustering (defaults derive from the
/// owning ReTraTree's parameters).
struct QuTParams {
  /// Max spatial gap between consecutive cluster pieces for stitching
  /// (defaults to the tree's d_assign when <= 0).
  double stitch_distance = -1.0;
  /// Max time gap at the stitch boundary (defaults to 1% of delta when < 0).
  double stitch_time_gap = -1.0;
  /// Minimum duration of a trimmed member to stay in the answer.
  double min_member_duration = 1e-9;
};

/// \brief One answer cluster: a chain of representative pieces across
/// consecutive sub-chunks plus all (window-trimmed) member
/// sub-trajectories.
struct QuTCluster {
  std::vector<traj::SubTrajectory> representatives;
  std::vector<traj::SubTrajectory> members;

  double StartTime() const;
  double EndTime() const;
};

/// \brief Work counters proving the progressive property (boundary-only
/// recomputation).
struct QuTStats {
  size_t sub_chunks_visited = 0;
  size_t sub_chunks_full = 0;      ///< Served without any recomputation.
  size_t sub_chunks_partial = 0;   ///< Boundary sub-chunks (trim + recheck).
  size_t members_read = 0;
  size_t members_reassigned = 0;   ///< Boundary members demoted to outliers.
  size_t stitches = 0;
  int64_t elapsed_us = 0;
};

/// \brief Result of a QuT query: clusters and outliers restricted to W.
struct QuTResult {
  std::vector<QuTCluster> clusters;
  std::vector<traj::SubTrajectory> outliers;
  QuTStats stats;

  size_t TotalMembers() const;
};

/// \brief QuT-Clustering (DMKD 2017): given a temporal window W, assembles
/// the sub-trajectory clusters and outliers that temporally intersect W
/// from the ReTraTree — without re-running the clustering pipeline.
///
/// Sub-chunks fully covered by W contribute their clusters as stored;
/// boundary sub-chunks trim members to W and re-validate membership
/// against the trimmed representative; cluster pieces of consecutive
/// sub-chunks whose representatives are continuous at the boundary are
/// stitched into one answer cluster.
class QuTClustering {
 public:
  explicit QuTClustering(const ReTraTree* tree) : tree_(tree) {}

  /// Runs `SELECT QUT(D, Wi, We, ...)`.
  StatusOr<QuTResult> Query(double wi, double we,
                            const QuTParams& params = QuTParams()) const;

 private:
  const ReTraTree* tree_;
};

}  // namespace hermes::core

#endif  // HERMES_CORE_QUT_CLUSTERING_H_
