#include "core/qut_clustering.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "traj/distance.h"

namespace hermes::core {

namespace {
int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Union-find over cluster pieces for stitching.
class DisjointSet {
 public:
  explicit DisjointSet(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// One cluster piece gathered from a sub-chunk before stitching.
struct Piece {
  int64_t sub_chunk = 0;
  traj::SubTrajectory representative;
  std::vector<traj::SubTrajectory> members;
};
}  // namespace

double QuTCluster::StartTime() const {
  double t = std::numeric_limits<double>::infinity();
  for (const auto& r : representatives) t = std::min(t, r.StartTime());
  for (const auto& m : members) t = std::min(t, m.StartTime());
  return t;
}

double QuTCluster::EndTime() const {
  double t = -std::numeric_limits<double>::infinity();
  for (const auto& r : representatives) t = std::max(t, r.EndTime());
  for (const auto& m : members) t = std::max(t, m.EndTime());
  return t;
}

size_t QuTResult::TotalMembers() const {
  size_t n = 0;
  for (const auto& c : clusters) n += c.members.size();
  return n;
}

StatusOr<QuTResult> QuTClustering::Query(double wi, double we,
                                         const QuTParams& params) const {
  if (we <= wi) return Status::InvalidArgument("empty window");
  const int64_t t_start = NowUs();

  const ReTraTreeParams& tp = tree_->params();
  const double stitch_d =
      params.stitch_distance > 0.0 ? params.stitch_distance : tp.d_assign;
  const double stitch_gap = params.stitch_time_gap >= 0.0
                                ? params.stitch_time_gap
                                : tp.delta * 0.01;

  QuTResult result;
  std::vector<Piece> pieces;

  for (const SubChunk* sc : tree_->SubChunksIn(wi, we)) {
    ++result.stats.sub_chunks_visited;
    const bool full = sc->start >= wi && sc->end <= we;
    if (full) {
      ++result.stats.sub_chunks_full;
    } else {
      ++result.stats.sub_chunks_partial;
    }
    const double lo = std::max(wi, sc->start);
    const double hi = std::min(we, sc->end);

    for (const auto& entry : sc->representatives) {
      Piece piece;
      piece.sub_chunk = sc->global_index;
      if (full) {
        // The progressive fast path: stored clusters are the answer.
        piece.representative = entry->representative;
        HERMES_ASSIGN_OR_RETURN(piece.members, tree_->ReadMembers(*entry));
        result.stats.members_read += piece.members.size();
      } else {
        // Boundary sub-chunk: trim to W and re-validate membership.
        piece.representative =
            traj::TrimToWindow(entry->representative, lo, hi);
        if (piece.representative.points.size() < 2) continue;
        HERMES_ASSIGN_OR_RETURN(
            std::vector<traj::SubTrajectory> members,
            tree_->ReadMembersInWindow(*entry, lo, hi));
        result.stats.members_read += members.size();
        for (auto& m : members) {
          traj::SubTrajectory trimmed = traj::TrimToWindow(m, lo, hi);
          if (trimmed.points.size() < 2 ||
              trimmed.Duration() < params.min_member_duration) {
            continue;
          }
          const double d = traj::ClusteringDistance(
              trimmed.points, piece.representative.points,
              tp.min_overlap_ratio);
          if (d <= tp.d_assign) {
            piece.members.push_back(std::move(trimmed));
          } else {
            ++result.stats.members_reassigned;
            result.outliers.push_back(std::move(trimmed));
          }
        }
      }
      if (!piece.members.empty()) pieces.push_back(std::move(piece));
    }

    // Outliers of this sub-chunk, trimmed to the window.
    HERMES_ASSIGN_OR_RETURN(std::vector<traj::SubTrajectory> outs,
                            tree_->ReadOutliers(*sc));
    for (auto& o : outs) {
      traj::SubTrajectory trimmed = full ? o : traj::TrimToWindow(o, lo, hi);
      if (trimmed.points.size() < 2) continue;
      result.outliers.push_back(std::move(trimmed));
    }
  }

  // Stitch cluster pieces of consecutive sub-chunks whose representatives
  // are continuous at the shared boundary.
  DisjointSet ds(pieces.size());
  for (size_t i = 0; i < pieces.size(); ++i) {
    for (size_t j = 0; j < pieces.size(); ++j) {
      if (i == j) continue;
      const auto& a = pieces[i].representative;
      const auto& b = pieces[j].representative;
      // a must end where b starts (adjacent sub-chunks).
      if (pieces[j].sub_chunk != pieces[i].sub_chunk + 1) continue;
      const double tgap = std::fabs(b.StartTime() - a.EndTime());
      if (tgap > stitch_gap + 1e-9) continue;
      const double sgap =
          geom::Distance(a.points.back().xy(), b.points.front().xy());
      if (sgap > stitch_d) continue;
      ds.Union(i, j);
      ++result.stats.stitches;
    }
  }

  std::map<size_t, QuTCluster> merged;
  for (size_t i = 0; i < pieces.size(); ++i) {
    QuTCluster& c = merged[ds.Find(i)];
    c.representatives.push_back(pieces[i].representative);
    for (auto& m : pieces[i].members) c.members.push_back(std::move(m));
  }
  result.clusters.reserve(merged.size());
  for (auto& [root, cluster] : merged) {
    std::sort(cluster.representatives.begin(), cluster.representatives.end(),
              [](const traj::SubTrajectory& a, const traj::SubTrajectory& b) {
                return a.StartTime() < b.StartTime();
              });
    result.clusters.push_back(std::move(cluster));
  }
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const QuTCluster& a, const QuTCluster& b) {
              return a.StartTime() < b.StartTime();
            });

  result.stats.elapsed_us = NowUs() - t_start;
  return result;
}

}  // namespace hermes::core
