#include "core/retratree.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/coding.h"
#include "common/logging.h"
#include "exec/parallel_for.h"
#include "traj/distance.h"

namespace hermes::core {

namespace {
/// Sub-chunk pieces must fit one heap-file record; longer pieces are split
/// into consecutive runs of at most this many samples.
constexpr size_t kMaxSamplesPerPiece = 300;

/// Trajectories per chunk of the batch split fan-out.
constexpr size_t kSplitGrain = 8;

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

std::string EncodeSubTrajectory(const traj::SubTrajectory& st) {
  std::string out;
  PutFixed64(&out, st.id);
  PutFixed64(&out, st.source_trajectory);
  PutFixed64(&out, st.object_id);
  PutFixed64(&out, st.first_sample_index);
  PutDouble(&out, st.mean_voting);
  PutFixed32(&out, static_cast<uint32_t>(st.points.size()));
  for (const auto& p : st.points.samples()) {
    PutDouble(&out, p.x);
    PutDouble(&out, p.y);
    PutDouble(&out, p.t);
  }
  return out;
}

StatusOr<traj::SubTrajectory> DecodeSubTrajectory(const std::string& bytes) {
  if (bytes.size() < 44) return Status::Corruption("sub-trajectory too short");
  Decoder dec(bytes);
  traj::SubTrajectory st;
  st.id = dec.ReadFixed64();
  st.source_trajectory = dec.ReadFixed64();
  st.object_id = dec.ReadFixed64();
  st.first_sample_index = dec.ReadFixed64();
  st.mean_voting = dec.ReadDouble();
  const uint32_t n = dec.ReadFixed32();
  if (dec.remaining() != static_cast<size_t>(n) * 24) {
    return Status::Corruption("sub-trajectory size mismatch");
  }
  traj::Trajectory points(st.object_id);
  for (uint32_t i = 0; i < n; ++i) {
    const double x = dec.ReadDouble();
    const double y = dec.ReadDouble();
    const double t = dec.ReadDouble();
    HERMES_RETURN_NOT_OK(points.Append({x, y, t}));
  }
  st.points = std::move(points);
  return st;
}

ReTraTree::ReTraTree(storage::Env* env, std::string dir,
                     ReTraTreeParams params,
                     std::unique_ptr<storage::PartitionManager> partitions,
                     exec::ExecContext* exec)
    : env_(env),
      dir_(std::move(dir)),
      params_(std::move(params)),
      partitions_(std::move(partitions)),
      exec_(exec) {}

StatusOr<std::unique_ptr<ReTraTree>> ReTraTree::Open(storage::Env* env,
                                                     const std::string& dir,
                                                     ReTraTreeParams params,
                                                     exec::ExecContext* exec) {
  if (params.tau <= 0.0 || params.delta <= 0.0) {
    return Status::InvalidArgument("tau and delta must be positive");
  }
  if (params.delta > params.tau) {
    return Status::InvalidArgument("delta must not exceed tau");
  }
  // Snap delta so an integer number of sub-chunks tiles each chunk.
  const double ratio = std::round(params.tau / params.delta);
  params.delta = params.tau / std::max(1.0, ratio);

  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<storage::PartitionManager> pm,
                          storage::PartitionManager::Open(env, dir));
  auto tree = std::unique_ptr<ReTraTree>(
      new ReTraTree(env, dir, std::move(params), std::move(pm), exec));
  if (env->FileExists(tree->CatalogPath())) {
    HERMES_RETURN_NOT_OK(tree->LoadCatalog());
  }
  return tree;
}

std::string ReTraTree::CatalogPath() const {
  return dir_ + "/" + kReTraTreeCatalog;
}

namespace {
constexpr uint32_t kCatalogMagic = 0x52545243u;  // "RTRC"
// v2: per-sub-chunk derived_seq/rep_seq replace the global partition
// sequence (the per-sub-chunk id scheme behind batch/sequential parity).
constexpr uint32_t kCatalogVersion = 2;

void PutString(std::string* dst, const std::string& s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s);
}
}  // namespace

Status ReTraTree::Save() {
  HERMES_RETURN_NOT_OK(Flush());
  std::string buf;
  PutFixed32(&buf, kCatalogMagic);
  PutFixed32(&buf, kCatalogVersion);
  PutDouble(&buf, params_.tau);
  PutDouble(&buf, params_.delta);
  PutDouble(&buf, params_.t_align);
  PutDouble(&buf, params_.d_assign);
  PutFixed64(&buf, params_.gamma);
  PutDouble(&buf, params_.origin);
  PutFixed64(&buf, next_sub_id_);

  uint64_t num_subchunks = 0;
  for (const auto& [ci, chunk] : chunks_) {
    num_subchunks += chunk.sub_chunks.size();
  }
  PutFixed64(&buf, num_subchunks);
  for (const auto& [ci, chunk] : chunks_) {
    for (const auto& [si, sc] : chunk.sub_chunks) {
      PutFixed64(&buf, static_cast<uint64_t>(sc.global_index));
      PutString(&buf, sc.outlier_partition);
      PutFixed64(&buf, sc.outlier_count);
      PutFixed64(&buf, sc.recluster_watermark);
      PutFixed64(&buf, sc.derived_seq);
      PutFixed64(&buf, sc.rep_seq);
      PutFixed64(&buf, sc.representatives.size());
      for (const auto& entry : sc.representatives) {
        PutString(&buf, entry->partition_name);
        PutFixed64(&buf, entry->member_count);
        PutString(&buf, EncodeSubTrajectory(entry->representative));
      }
    }
  }

  // Rewrite from scratch: WriteAt never truncates, and a shrinking
  // catalog must not leave stale trailing bytes.
  if (env_->FileExists(CatalogPath())) {
    HERMES_RETURN_NOT_OK(env_->DeleteFile(CatalogPath()));
  }
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<storage::RandomRWFile> file,
                          env_->NewRWFile(CatalogPath()));
  HERMES_RETURN_NOT_OK(file->WriteAt(0, buf.size(), buf.data()));
  return file->Sync();
}

Status ReTraTree::LoadCatalog() {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<storage::RandomRWFile> file,
                          env_->NewRWFile(CatalogPath()));
  HERMES_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::string buf;
  buf.resize(size);
  HERMES_RETURN_NOT_OK(file->ReadAt(0, size, buf.data()));

  Decoder dec(buf);
  if (dec.remaining() < 8 || dec.ReadFixed32() != kCatalogMagic) {
    return Status::Corruption("bad ReTraTree catalog magic");
  }
  if (dec.ReadFixed32() != kCatalogVersion) {
    return Status::Corruption("unsupported catalog version");
  }
  const double tau = dec.ReadDouble();
  const double delta = dec.ReadDouble();
  const double t_align = dec.ReadDouble();
  const double d_assign = dec.ReadDouble();
  const uint64_t gamma = dec.ReadFixed64();
  const double origin = dec.ReadDouble();
  if (std::fabs(tau - params_.tau) > 1e-9 ||
      std::fabs(delta - params_.delta) > 1e-9 ||
      std::fabs(origin - params_.origin) > 1e-9) {
    return Status::InvalidArgument(
        "ReTraTree catalog was built with different structural parameters");
  }
  params_.t_align = t_align;
  params_.d_assign = d_assign;
  params_.gamma = gamma;
  next_sub_id_ = dec.ReadFixed64();

  // Parse the variable-length remainder with a raw cursor (the fixed-width
  // Decoder has no bytes reader). Header: magic, version, 5 doubles + gamma
  // (6 x 8), next_sub_id.
  size_t off = 4 + 4 + 8 * 6 + 8;
  auto need = [&](size_t n) -> Status {
    if (off + n > buf.size()) return Status::Corruption("catalog truncated");
    return Status::OK();
  };
  auto get_u64 = [&](uint64_t* v) -> Status {
    HERMES_RETURN_NOT_OK(need(8));
    *v = GetFixed64(buf.data() + off);
    off += 8;
    return Status::OK();
  };
  auto get_str = [&](std::string* s) -> Status {
    HERMES_RETURN_NOT_OK(need(4));
    const uint32_t n = GetFixed32(buf.data() + off);
    off += 4;
    HERMES_RETURN_NOT_OK(need(n));
    s->assign(buf.data() + off, n);
    off += n;
    return Status::OK();
  };

  uint64_t num_subchunks = 0;
  HERMES_RETURN_NOT_OK(get_u64(&num_subchunks));
  chunks_.clear();
  for (uint64_t k = 0; k < num_subchunks; ++k) {
    uint64_t raw_index = 0;
    HERMES_RETURN_NOT_OK(get_u64(&raw_index));
    const int64_t si = static_cast<int64_t>(raw_index);
    SubChunk* sc = GetOrCreateSubChunkByIndex(si);
    HERMES_RETURN_NOT_OK(get_str(&sc->outlier_partition));
    HERMES_RETURN_NOT_OK(get_u64(&sc->outlier_count));
    HERMES_RETURN_NOT_OK(get_u64(&sc->recluster_watermark));
    HERMES_RETURN_NOT_OK(get_u64(&sc->derived_seq));
    HERMES_RETURN_NOT_OK(get_u64(&sc->rep_seq));
    uint64_t num_reps = 0;
    HERMES_RETURN_NOT_OK(get_u64(&num_reps));
    for (uint64_t r = 0; r < num_reps; ++r) {
      auto entry = std::make_unique<RepresentativeEntry>();
      HERMES_RETURN_NOT_OK(get_str(&entry->partition_name));
      HERMES_RETURN_NOT_OK(get_u64(&entry->member_count));
      std::string rep_bytes;
      HERMES_RETURN_NOT_OK(get_str(&rep_bytes));
      HERMES_ASSIGN_OR_RETURN(entry->representative,
                              DecodeSubTrajectory(rep_bytes));
      HERMES_ASSIGN_OR_RETURN(
          entry->index,
          rtree::RTree3D::Open(env_, dir_ + "/" + entry->partition_name +
                                         ".idx"));
      sc->representatives.push_back(std::move(entry));
    }
  }
  return Status::OK();
}

int64_t ReTraTree::ChunkIndexOf(double t) const {
  return static_cast<int64_t>(std::floor((t - params_.origin) / params_.tau));
}

int64_t ReTraTree::SubChunkIndexOf(double t) const {
  return static_cast<int64_t>(
      std::floor((t - params_.origin) / params_.delta));
}

SubChunk* ReTraTree::GetOrCreateSubChunk(double t) {
  return GetOrCreateSubChunkByIndex(SubChunkIndexOf(t));
}

SubChunk* ReTraTree::GetOrCreateSubChunkByIndex(int64_t si) {
  const double mid = params_.origin + si * params_.delta + params_.delta / 2;
  const int64_t ci = ChunkIndexOf(mid);
  auto [cit, cnew] = chunks_.try_emplace(ci);
  Chunk& chunk = cit->second;
  if (cnew) {
    chunk.index = ci;
    chunk.start = params_.origin + ci * params_.tau;
    chunk.end = chunk.start + params_.tau;
  }
  auto [sit, snew] = chunk.sub_chunks.try_emplace(si);
  SubChunk& sc = sit->second;
  if (snew) {
    sc.global_index = si;
    sc.start = params_.origin + si * params_.delta;
    sc.end = sc.start + params_.delta;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "sc%lld_out",
                  static_cast<long long>(si));
    sc.outlier_partition = buf;
  }
  return &sc;
}

uint64_t ReTraTree::NextDerivedId(SubChunk* sc) {
  const int64_t si = sc->global_index;
  const uint64_t key = si >= 0
                           ? (static_cast<uint64_t>(si) << 1)
                           : ((static_cast<uint64_t>(-(si + 1)) << 1) | 1);
  HERMES_CHECK(key < (uint64_t{1} << 39))
      << "sub-chunk index " << si << " outside the derived-id key space";
  HERMES_CHECK(sc->derived_seq < (uint64_t{1} << 24))
      << "derived-id space of sub-chunk " << si << " exhausted";
  return (uint64_t{1} << 63) | (key << 24) | sc->derived_seq++;
}

Status ReTraTree::SplitTrajectory(const traj::Trajectory& trajectory,
                                  traj::TrajectoryId source_id,
                                  std::vector<PendingPiece>* out) const {
  // Split at sub-chunk boundaries (which include chunk boundaries).
  const int64_t first = SubChunkIndexOf(trajectory.StartTime());
  const int64_t last = SubChunkIndexOf(trajectory.EndTime());
  for (int64_t si = first; si <= last; ++si) {
    const double lo = params_.origin + si * params_.delta;
    const double hi = lo + params_.delta;
    traj::Trajectory piece = trajectory.Slice(lo, hi);
    if (piece.size() < 2) continue;

    // Long pieces are split to honor the record-size bound.
    size_t offset = 0;
    while (offset + 1 < piece.size()) {
      const size_t take = std::min(kMaxSamplesPerPiece, piece.size() - offset);
      PendingPiece pp;
      pp.sub_chunk = si;
      pp.st.source_trajectory = source_id;
      pp.st.object_id = trajectory.object_id();
      pp.st.first_sample_index = offset;
      traj::Trajectory part(trajectory.object_id());
      for (size_t k = offset; k < offset + take; ++k) {
        HERMES_RETURN_NOT_OK(part.Append(piece[k]));
      }
      pp.st.points = std::move(part);
      out->push_back(std::move(pp));
      if (offset + take >= piece.size()) break;
      offset += take - 1;  // Overlap one sample to keep continuity.
    }
  }
  return Status::OK();
}

Status ReTraTree::Insert(const traj::Trajectory& trajectory,
                         traj::TrajectoryId source_id) {
  if (trajectory.size() < 2) {
    return Status::InvalidArgument("trajectory needs >= 2 samples");
  }
  std::vector<PendingPiece> pieces;
  HERMES_RETURN_NOT_OK(SplitTrajectory(trajectory, source_id, &pieces));
  for (PendingPiece& pp : pieces) {
    pp.st.id = next_sub_id_++;
    SubChunk* sc = GetOrCreateSubChunkByIndex(pp.sub_chunk);
    HERMES_RETURN_NOT_OK(InsertPiece(sc, std::move(pp.st), true, exec_));
  }
  return Status::OK();
}

Status ReTraTree::InsertStore(const traj::TrajectoryStore& store,
                              exec::ExecContext* exec) {
  return InsertBatch(store, exec != nullptr ? exec : exec_);
}

Status ReTraTree::InsertBatch(const traj::TrajectoryStore& store,
                              exec::ExecContext* exec) {
  return InsertBatch(store, exec, 0, store.NumTrajectories());
}

Status ReTraTree::InsertBatch(const traj::TrajectoryStore& store,
                              exec::ExecContext* exec,
                              traj::TrajectoryId first, size_t count) {
  exec::ExecContext* ctx = exec != nullptr ? exec : exec_;
  if (first + count > store.NumTrajectories()) {
    return Status::InvalidArgument(
        "InsertBatch range [" + std::to_string(first) + ", " +
        std::to_string(first + count) + ") exceeds store size " +
        std::to_string(store.NumTrajectories()));
  }
  const size_t n = count;
  if (n == 0) return Status::OK();

  // ---- Phase 1: split. Pure per-trajectory work fans out; ids are then
  // pre-assigned by prefix sum in (trajectory, piece) order — the exact
  // order a sequential Insert loop draws them from next_sub_id_.
  const int64_t split_start = NowUs();
  std::vector<std::vector<PendingPiece>> per_traj(n);
  std::vector<Status> split_status(exec::NumChunks(n, kSplitGrain),
                                   Status::OK());
  exec::ParallelFor(ctx, n, kSplitGrain,
                    [&](size_t begin, size_t end, size_t chunk) {
    for (size_t i = begin; i < end; ++i) {
      const traj::TrajectoryId tid = first + i;
      const traj::Trajectory& t = store.Get(tid);
      if (t.size() < 2) {
        split_status[chunk] = Status::InvalidArgument(
            "trajectory " + std::to_string(tid) + " needs >= 2 samples");
        return;
      }
      const Status st = SplitTrajectory(t, tid, &per_traj[i]);
      if (!st.ok()) {
        split_status[chunk] = st;
        return;
      }
    }
  });
  for (const Status& st : split_status) {
    HERMES_RETURN_NOT_OK(st);
  }

  // Pre-assign ids in (trajectory, piece) order — the exact order a
  // sequential Insert loop draws them from next_sub_id_ — while bucketing
  // pieces per sub-chunk in the same global order. Every L1/L2 node is
  // created up front so the apply fan-out never mutates the chunk maps.
  std::map<int64_t, std::vector<traj::SubTrajectory>> buckets;
  for (size_t tid = 0; tid < n; ++tid) {
    for (PendingPiece& pp : per_traj[tid]) {
      pp.st.id = next_sub_id_++;
      buckets[pp.sub_chunk].push_back(std::move(pp.st));
    }
  }
  struct ApplyTask {
    SubChunk* sc;
    std::vector<traj::SubTrajectory> pieces;
  };
  std::vector<ApplyTask> tasks;
  tasks.reserve(buckets.size());
  for (auto& [si, pieces] : buckets) {
    tasks.push_back({GetOrCreateSubChunkByIndex(si), std::move(pieces)});
  }
  const int64_t split_us = NowUs() - split_start;

  // ---- Phase 2: apply, one task per sub-chunk. Each task touches only
  // its sub-chunk's representatives, partitions, indexes, and id/name
  // sequences; the partition manager and the stats are the only shared
  // state, both mutex-guarded.
  const int64_t apply_start = NowUs();
  std::vector<Status> apply_status(tasks.size(), Status::OK());
  exec::ParallelFor(ctx, tasks.size(), /*grain=*/1,
                    [&](size_t begin, size_t end, size_t /*chunk*/) {
    for (size_t k = begin; k < end; ++k) {
      for (traj::SubTrajectory& piece : tasks[k].pieces) {
        const Status st =
            InsertPiece(tasks[k].sc, std::move(piece), true, ctx);
        if (!st.ok()) {
          apply_status[k] = st;
          break;
        }
      }
    }
  });
  for (const Status& st : apply_status) {
    HERMES_RETURN_NOT_OK(st);
  }
  const int64_t apply_us = NowUs() - apply_start;

  {
    common::MutexLock lock(&stats_mu_);
    stats_.ingest_split_us += split_us;
    stats_.ingest_apply_us += apply_us;
  }
  if (ctx != nullptr) {
    ctx->stats().RecordPhaseUs("ingest_split", split_us);
    ctx->stats().RecordPhaseUs("ingest_apply", apply_us);
  }
  return Status::OK();
}

Status ReTraTree::InsertPiece(SubChunk* sc, traj::SubTrajectory piece,
                              bool allow_recluster,
                              exec::ExecContext* ctx) {
  // L3 assignment: closest representative within (d, t).
  RepresentativeEntry* best = nullptr;
  double best_dist = params_.d_assign;
  for (auto& entry : sc->representatives) {
    const traj::SubTrajectory& rep = entry->representative;
    const double mismatch =
        std::max(std::fabs(piece.StartTime() - rep.StartTime()),
                 std::fabs(piece.EndTime() - rep.EndTime()));
    if (mismatch > params_.t_align) continue;
    const double d = traj::ClusteringDistance(piece.points, rep.points,
                                              params_.min_overlap_ratio);
    if (d <= best_dist) {
      best_dist = d;
      best = entry.get();
    }
  }
  if (best != nullptr) {
    {
      common::MutexLock lock(&stats_mu_);
      ++stats_.pieces_inserted;
      ++stats_.assigned_to_existing;
    }
    return AppendMember(best, piece);
  }

  // Outlier path.
  HERMES_ASSIGN_OR_RETURN(storage::HeapFile * hf,
                          partitions_->GetOrCreate(sc->outlier_partition));
  HERMES_ASSIGN_OR_RETURN(storage::RecordId rid,
                          hf->Append(EncodeSubTrajectory(piece)));
  (void)rid;
  {
    common::MutexLock lock(&stats_mu_);
    ++stats_.pieces_inserted;
    ++stats_.sent_to_outliers;
    ++stats_.records_written;
  }
  ++sc->outlier_count;
  HERMES_RETURN_NOT_OK(ExtendHotSnapshot(&sc->hot_outliers, piece));

  if (allow_recluster && sc->outlier_count >= params_.gamma &&
      sc->outlier_count >= sc->recluster_watermark) {
    return ReclusterOutliers(sc, ctx);
  }
  return Status::OK();
}

Status ReTraTree::AppendMember(RepresentativeEntry* entry,
                               const traj::SubTrajectory& member) {
  HERMES_ASSIGN_OR_RETURN(storage::HeapFile * hf,
                          partitions_->GetOrCreate(entry->partition_name));
  HERMES_ASSIGN_OR_RETURN(storage::RecordId rid,
                          hf->Append(EncodeSubTrajectory(member)));
  {
    common::MutexLock lock(&stats_mu_);
    ++stats_.records_written;
  }
  HERMES_RETURN_NOT_OK(entry->index->Insert(member.Bounds(), rid.Pack()));
  ++entry->member_count;
  // Incremental catch-up extends a live hot snapshot the same way it just
  // extended the Gist (no-op while the partition is cold).
  return ExtendHotSnapshot(&entry->hot, member);
}

Status ReTraTree::ReclusterOutliers(SubChunk* sc,
                                    exec::ExecContext* ctx) {
  // Drain the buffered outliers straight from disk — no hot promotion;
  // the buffer is about to be dropped.
  HERMES_ASSIGN_OR_RETURN(std::vector<traj::SubTrajectory> buffered,
                          ScanPartition(sc->outlier_partition));

  // Re-cluster them with S2T: each buffered piece acts as a trajectory of
  // the temporary MOD.
  traj::TrajectoryStore temp;
  std::vector<size_t> temp_to_buffered;
  for (size_t i = 0; i < buffered.size(); ++i) {
    if (buffered[i].points.size() < 2) continue;
    auto added = temp.Add(buffered[i].points);
    if (!added.ok()) continue;
    temp_to_buffered.push_back(i);
  }
  if (temp.NumTrajectories() < 2) return Status::OK();

  S2TClustering s2t(params_.s2t);
  HERMES_ASSIGN_OR_RETURN(S2TResult result, s2t.Run(temp, ctx));
  {
    common::MutexLock lock(&stats_mu_);
    ++stats_.s2t_runs;
    stats_.s2t_timings += result.timings;
  }

  // Drop and recreate the outlier partition; survivors are re-appended.
  HERMES_RETURN_NOT_OK(partitions_->Drop(sc->outlier_partition));
  sc->outlier_count = 0;
  {
    // Any published snapshot described the dropped buffer; residues
    // re-enter cold and the next read re-promotes.
    common::MutexLock lock(&hot_mu_);
    DemoteLocked(&sc->hot_outliers);
  }

  // Back-propagate discovered representatives (clusters big enough).
  std::vector<bool> archived(result.sub_trajectories.size(), false);
  for (const auto& cluster : result.clustering.clusters) {
    if (cluster.members.size() < params_.min_new_cluster_size) continue;
    auto entry = std::make_unique<RepresentativeEntry>();
    traj::SubTrajectory rep =
        result.sub_trajectories[cluster.representative];
    // Restore provenance from the buffered piece the rep came from.
    const size_t buf_idx =
        temp_to_buffered[rep.source_trajectory];
    rep.id = NextDerivedId(sc);
    rep.source_trajectory = buffered[buf_idx].source_trajectory;
    entry->representative = rep;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "sc%lld_r%llu",
                  static_cast<long long>(sc->global_index),
                  static_cast<unsigned long long>(sc->rep_seq++));
    entry->partition_name = buf;
    HERMES_ASSIGN_OR_RETURN(
        entry->index,
        rtree::RTree3D::Open(env_, dir_ + "/" + entry->partition_name +
                                       ".idx"));
    RepresentativeEntry* raw = entry.get();
    sc->representatives.push_back(std::move(entry));
    {
      common::MutexLock lock(&stats_mu_);
      ++stats_.representatives_created;
    }

    for (size_t m : cluster.members) {
      traj::SubTrajectory member = result.sub_trajectories[m];
      const size_t mbuf = temp_to_buffered[member.source_trajectory];
      member.id = NextDerivedId(sc);
      member.source_trajectory = buffered[mbuf].source_trajectory;
      member.object_id = buffered[mbuf].object_id;
      HERMES_RETURN_NOT_OK(AppendMember(raw, member));
      archived[m] = true;
    }
  }

  // Residual outliers re-enter the tree; the new representatives may now
  // accommodate them, otherwise they land back in the (fresh) buffer.
  // Residues are sub-pieces of this sub-chunk's buffered pieces, so they
  // stay inside `sc` — which keeps the apply fan-out's sub-chunk ownership
  // intact.
  for (size_t o : result.clustering.outliers) {
    if (archived[o]) continue;
    traj::SubTrajectory residue = result.sub_trajectories[o];
    const size_t rbuf = temp_to_buffered[residue.source_trajectory];
    residue.id = NextDerivedId(sc);
    residue.source_trajectory = buffered[rbuf].source_trajectory;
    residue.object_id = buffered[rbuf].object_id;
    {
      common::MutexLock lock(&stats_mu_);
      ++stats_.reinserted_after_s2t;
    }
    HERMES_RETURN_NOT_OK(InsertPiece(sc, std::move(residue), false, ctx));
  }
  // Members of clusters that were too small also return to the buffer.
  for (const auto& cluster : result.clustering.clusters) {
    if (cluster.members.size() >= params_.min_new_cluster_size) continue;
    for (size_t m : cluster.members) {
      traj::SubTrajectory residue = result.sub_trajectories[m];
      const size_t rbuf = temp_to_buffered[residue.source_trajectory];
      residue.id = NextDerivedId(sc);
      residue.source_trajectory = buffered[rbuf].source_trajectory;
      residue.object_id = buffered[rbuf].object_id;
      {
        common::MutexLock lock(&stats_mu_);
        ++stats_.reinserted_after_s2t;
      }
      HERMES_RETURN_NOT_OK(InsertPiece(sc, std::move(residue), false, ctx));
    }
  }
  // Raise the trigger so residues alone cannot immediately re-fire S2T.
  sc->recluster_watermark = sc->outlier_count + params_.gamma;
  return Status::OK();
}

std::vector<const SubChunk*> ReTraTree::SubChunksIn(double t0,
                                                    double t1) const {
  std::vector<const SubChunk*> out;
  for (const auto& [ci, chunk] : chunks_) {
    if (chunk.end <= t0 || chunk.start >= t1) continue;
    for (const auto& [si, sc] : chunk.sub_chunks) {
      if (sc.end <= t0 || sc.start >= t1) continue;
      out.push_back(&sc);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SubChunk* a, const SubChunk* b) {
              return a->start < b->start;
            });
  return out;
}

StatusOr<std::vector<traj::SubTrajectory>> ReTraTree::ScanPartition(
    const std::string& name) const {
  std::vector<traj::SubTrajectory> out;
  HERMES_ASSIGN_OR_RETURN(storage::HeapFile * hf,
                          partitions_->GetOrCreate(name));
  Status decode_status = Status::OK();
  HERMES_RETURN_NOT_OK(
      hf->Scan([&](const storage::RecordId&, const std::string& rec) {
        auto st = DecodeSubTrajectory(rec);
        if (!st.ok()) {
          decode_status = st.status();
          return false;
        }
        out.push_back(std::move(st).value());
        return true;
      }));
  HERMES_RETURN_NOT_OK(decode_status);
  {
    common::MutexLock lock(&stats_mu_);
    stats_.records_read += out.size();
  }
  return out;
}

StatusOr<std::vector<traj::SubTrajectory>> ReTraTree::ReadMembers(
    const RepresentativeEntry& entry) const {
  if (HotSlot hot = std::atomic_load(&entry.hot)) {
    qut_hot_probes_.fetch_add(1, std::memory_order_relaxed);
    TouchHot(*hot);
    return hot->members;
  }
  qut_cold_probes_.fetch_add(1, std::memory_order_relaxed);
  HERMES_ASSIGN_OR_RETURN(std::vector<traj::SubTrajectory> out,
                          ScanPartition(entry.partition_name));
  MaybePromote(&entry.hot, &entry.hot_unfit_budget, out, /*with_index=*/true);
  return out;
}

StatusOr<std::vector<traj::SubTrajectory>> ReTraTree::ReadMembersInWindow(
    const RepresentativeEntry& entry, double t0, double t1) const {
  // Time-only range: unbounded spatial extent.
  const double kBig = 1e18;
  const geom::Mbb3D window(-kBig, -kBig, t0, kBig, kBig, t1);

  HotSlot hot = std::atomic_load(&entry.hot);
  if (hot == nullptr && PromotionMightFit(entry.hot_unfit_budget)) {
    // Promote-on-read: fault the partition in once, then serve this and
    // every later window probe from the snapshot. Skipped entirely when
    // a failed fit is memoized — otherwise every window read would repay
    // the full scan just to rediscover the snapshot doesn't fit.
    HERMES_ASSIGN_OR_RETURN(std::vector<traj::SubTrajectory> all,
                            ScanPartition(entry.partition_name));
    MaybePromote(&entry.hot, &entry.hot_unfit_budget, all,
                 /*with_index=*/true);
    hot = std::atomic_load(&entry.hot);
  }
  if (hot != nullptr) {
    qut_hot_probes_.fetch_add(1, std::memory_order_relaxed);
    TouchHot(*hot);
    std::vector<uint64_t> ordinals;
    hot->index->SearchInto(window, rtree::QueryMode::kIntersects, &ordinals);
    // Ordinals are append order, exactly what sorting the cold path's
    // packed RecordIds produces — so hot and cold window reads return
    // the same members in the same order.
    std::sort(ordinals.begin(), ordinals.end());
    std::vector<traj::SubTrajectory> out;
    out.reserve(ordinals.size());
    for (uint64_t o : ordinals) {
      out.push_back(hot->members[static_cast<size_t>(o)]);
    }
    return out;
  }

  qut_cold_probes_.fetch_add(1, std::memory_order_relaxed);
  std::vector<traj::SubTrajectory> out;
  HERMES_ASSIGN_OR_RETURN(storage::HeapFile * hf,
                          partitions_->GetOrCreate(entry.partition_name));
  HERMES_ASSIGN_OR_RETURN(std::vector<uint64_t> rids,
                          entry.index->Search(window));
  std::sort(rids.begin(), rids.end());
  for (uint64_t packed : rids) {
    HERMES_ASSIGN_OR_RETURN(std::string rec,
                            hf->Read(storage::RecordId::Unpack(packed)));
    HERMES_ASSIGN_OR_RETURN(traj::SubTrajectory st,
                            DecodeSubTrajectory(rec));
    out.push_back(std::move(st));
  }
  {
    common::MutexLock lock(&stats_mu_);
    stats_.records_read += out.size();
  }
  return out;
}

StatusOr<std::vector<traj::SubTrajectory>> ReTraTree::ReadOutliers(
    const SubChunk& sc) const {
  if (HotSlot hot = std::atomic_load(&sc.hot_outliers)) {
    qut_hot_probes_.fetch_add(1, std::memory_order_relaxed);
    TouchHot(*hot);
    return hot->members;
  }
  qut_cold_probes_.fetch_add(1, std::memory_order_relaxed);
  if (!partitions_->Exists(sc.outlier_partition)) {
    // Promote the empty snapshot too, or every query re-counts this
    // sub-chunk as a cold probe; a later outlier insert extends it in
    // the same order the (then-created) heap partition would produce.
    std::vector<traj::SubTrajectory> none;
    MaybePromote(&sc.hot_outliers, &sc.hot_outliers_unfit_budget, none,
                 /*with_index=*/false);
    return none;
  }
  HERMES_ASSIGN_OR_RETURN(std::vector<traj::SubTrajectory> out,
                          ScanPartition(sc.outlier_partition));
  MaybePromote(&sc.hot_outliers, &sc.hot_outliers_unfit_budget, out,
               /*with_index=*/false);
  return out;
}

namespace {
/// Bounds -> member ordinal index over a hot snapshot's members.
/// Sequential on purpose: promotions run under the hot-tier mutex —
/// sometimes from inside an apply fan-out task — and partitions are
/// gamma-bounded small; the STR layout is thread-count independent
/// either way (the parallel arena bulk load lives in
/// `rtree::BuildMemSegmentIndex`).
std::unique_ptr<rtree::MemRTree3D> BuildHotMemberIndex(
    const std::vector<traj::SubTrajectory>& members) {
  std::vector<std::pair<geom::Mbb3D, uint64_t>> items;
  items.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    items.emplace_back(members[i].Bounds(), static_cast<uint64_t>(i));
  }
  return rtree::MemRTree3D::BulkLoad(std::move(items), /*fill_factor=*/0.9,
                                     /*ctx=*/nullptr);
}
}  // namespace

size_t ReTraTree::MemberBytes(const std::vector<traj::SubTrajectory>& members) {
  size_t bytes = members.size() * sizeof(traj::SubTrajectory);
  for (const auto& m : members) {
    bytes += m.points.size() * 3 * sizeof(double);
  }
  return bytes;
}

size_t ReTraTree::HotBytesOf(const HotPartition& hot) {
  size_t bytes = sizeof(HotPartition) + MemberBytes(hot.members);
  if (hot.index != nullptr) bytes += hot.index->bytes();
  return bytes;
}

void ReTraTree::MaybePromote(HotSlot* slot, std::atomic<size_t>* unfit_budget,
                             const std::vector<traj::SubTrajectory>& members,
                             bool with_index) const {
  if (!PromotionMightFit(*unfit_budget)) return;
  common::MutexLock lock(&hot_mu_);
  const size_t budget = hot_index_budget_.load(std::memory_order_relaxed);
  if (budget == 0) return;
  if (std::atomic_load(slot) != nullptr) return;  // Lost a promote race.
  // The members alone blow the budget: record the failure (so reads stop
  // re-scanning and re-measuring until the budget is raised) before
  // paying for the copy or the index build.
  if (sizeof(HotPartition) + MemberBytes(members) > budget) {
    unfit_budget->store(budget, std::memory_order_relaxed);
    return;
  }
  auto hot = std::make_shared<HotPartition>();
  hot->members = members;
  if (with_index) hot->index = BuildHotMemberIndex(hot->members);
  hot->bytes = HotBytesOf(*hot);
  if (hot->bytes > budget) {  // Members fit but the index tips it over.
    unfit_budget->store(budget, std::memory_order_relaxed);
    return;
  }
  unfit_budget->store(0, std::memory_order_relaxed);
  hot->pin = std::make_unique<traj::EpochPin>(hot_pins_);
  TouchHot(*hot);
  hot_bytes_.fetch_add(hot->bytes, std::memory_order_relaxed);
  hot_promotions_.fetch_add(1, std::memory_order_relaxed);
  bool known = false;
  for (HotSlot* s : hot_slots_) known = known || (s == slot);
  if (!known) hot_slots_.push_back(slot);
  std::atomic_store(slot, HotSlot(std::move(hot)));
  EnforceBudgetLocked();
}

Status ReTraTree::ExtendHotSnapshot(HotSlot* slot,
                                    const traj::SubTrajectory& member) const {
  common::MutexLock lock(&hot_mu_);
  HotSlot cur = std::atomic_load(slot);
  if (cur == nullptr) return Status::OK();  // Cold: nothing to maintain.
  // Republishing copies every member and rebuilds the whole index under
  // hot_mu_; past this size that O(n log n) tax per append serializes
  // the tier tree-wide, so drop the snapshot and let the next read
  // re-promote once instead.
  if (cur->members.size() >= kMaxHotExtendMembers) {
    DemoteLocked(slot);
    return Status::OK();
  }
  // Roundtrip through the record encoding so the hot copy stays
  // bit-identical to what a cold read would decode. On failure the
  // record is already durable in the heap + Gist, so a still-published
  // snapshot would silently hide it from hot reads: demote so the next
  // read re-promotes from disk.
  StatusOr<traj::SubTrajectory> decoded_or =
      DecodeSubTrajectory(EncodeSubTrajectory(member));
  if (!decoded_or.ok()) {
    DemoteLocked(slot);
    return decoded_or.status();
  }
  traj::SubTrajectory decoded = std::move(decoded_or).value();
  auto next = std::make_shared<HotPartition>();
  next->members = cur->members;
  next->members.push_back(std::move(decoded));
  if (cur->index != nullptr) next->index = BuildHotMemberIndex(next->members);
  next->bytes = HotBytesOf(*next);
  next->pin = std::make_unique<traj::EpochPin>(hot_pins_);
  next->last_access.store(cur->last_access.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  hot_bytes_.fetch_add(next->bytes, std::memory_order_relaxed);
  hot_bytes_.fetch_sub(cur->bytes, std::memory_order_relaxed);
  std::atomic_store(slot, HotSlot(std::move(next)));
  EnforceBudgetLocked();
  return Status::OK();
}

void ReTraTree::DemoteLocked(HotSlot* slot) const {
  HotSlot cur = std::atomic_load(slot);
  if (cur == nullptr) return;
  hot_bytes_.fetch_sub(cur->bytes, std::memory_order_relaxed);
  hot_demotions_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_store(slot, HotSlot());
}

void ReTraTree::EnforceBudgetLocked() const {
  const size_t budget = hot_index_budget_.load(std::memory_order_relaxed);
  while (hot_bytes_.load(std::memory_order_relaxed) > budget) {
    HotSlot* victim = nullptr;
    uint64_t victim_access = 0;
    for (HotSlot* s : hot_slots_) {
      HotSlot cur = std::atomic_load(s);
      if (cur == nullptr) continue;
      const uint64_t a = cur->last_access.load(std::memory_order_relaxed);
      if (victim == nullptr || a < victim_access) {
        victim = s;
        victim_access = a;
      }
    }
    if (victim == nullptr) break;
    DemoteLocked(victim);
  }
}

void ReTraTree::SetHotIndexBudget(size_t bytes) {
  common::MutexLock lock(&hot_mu_);
  hot_index_budget_.store(bytes, std::memory_order_relaxed);
  EnforceBudgetLocked();
}

HotTierStats ReTraTree::hot_stats() const {
  HotTierStats s;
  s.qut_hot_probes = qut_hot_probes_.load(std::memory_order_relaxed);
  s.qut_cold_probes = qut_cold_probes_.load(std::memory_order_relaxed);
  s.hot_promotions = hot_promotions_.load(std::memory_order_relaxed);
  s.hot_demotions = hot_demotions_.load(std::memory_order_relaxed);
  s.hot_index_bytes = hot_bytes_.load(std::memory_order_relaxed);
  s.hot_partitions = hot_pins_->live.load(std::memory_order_relaxed);
  s.hot_pins_total = hot_pins_->total.load(std::memory_order_relaxed);
  return s;
}

ColdIoStats ReTraTree::cold_io_stats() const {
  ColdIoStats s;
  partitions_->ForEachOpen([&](const std::string&, storage::HeapFile* hf) {
    const storage::PagerStats io = hf->io_stats();
    s.heap_page_fetches += io.cache_hits + io.cache_misses;
    const storage::LockStats ls = hf->lock_stats();
    s.heap_lock_acquisitions +=
        ls.shared_acquisitions + ls.exclusive_acquisitions;
  });
  for (const auto& [ci, chunk] : chunks_) {
    for (const auto& [si, sc] : chunk.sub_chunks) {
      for (const auto& entry : sc.representatives) {
        s.index_nodes_visited += entry->index->stats().nodes_visited;
        const storage::PagerStats io = entry->index->io_stats();
        s.index_page_fetches += io.cache_hits + io.cache_misses;
        const storage::LockStats ls = entry->index->lock_stats();
        s.index_lock_acquisitions +=
            ls.shared_acquisitions + ls.exclusive_acquisitions;
      }
    }
  }
  return s;
}

size_t ReTraTree::TotalRepresentatives() const {
  size_t n = 0;
  for (const auto& [ci, chunk] : chunks_) {
    for (const auto& [si, sc] : chunk.sub_chunks) {
      n += sc.representatives.size();
    }
  }
  return n;
}

Status ReTraTree::Validate() const {
  for (const auto& [ci, chunk] : chunks_) {
    if (chunk.index != ci) return Status::Corruption("chunk index mismatch");
    for (const auto& [si, sc] : chunk.sub_chunks) {
      if (sc.global_index != si) {
        return Status::Corruption("sub-chunk index mismatch");
      }
      if (sc.start < chunk.start - 1e-9 || sc.end > chunk.end + 1e-9) {
        return Status::Corruption("sub-chunk outside its chunk");
      }
      for (const auto& entry : sc.representatives) {
        HERMES_RETURN_NOT_OK(entry->index->Validate());
        if (entry->index->num_entries() != entry->member_count) {
          return Status::Corruption("index/member count mismatch for " +
                                    entry->partition_name);
        }
        HERMES_ASSIGN_OR_RETURN(auto members, ReadMembers(*entry));
        if (members.size() != entry->member_count) {
          return Status::Corruption("partition/member count mismatch for " +
                                    entry->partition_name);
        }
        // Representative must live inside its sub-chunk.
        const auto& rep = entry->representative;
        if (rep.StartTime() < sc.start - 1e-6 ||
            rep.EndTime() > sc.end + 1e-6) {
          return Status::Corruption("representative outside sub-chunk");
        }
      }
    }
  }
  return Status::OK();
}

Status ReTraTree::Flush() {
  HERMES_RETURN_NOT_OK(partitions_->FlushAll());
  for (auto& [ci, chunk] : chunks_) {
    for (auto& [si, sc] : chunk.sub_chunks) {
      for (auto& entry : sc.representatives) {
        HERMES_RETURN_NOT_OK(entry->index->Flush());
      }
    }
  }
  return Status::OK();
}

}  // namespace hermes::core
