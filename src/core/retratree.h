#ifndef HERMES_CORE_RETRATREE_H_
#define HERMES_CORE_RETRATREE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "core/s2t_clustering.h"
#include "rtree/mem_rtree3d.h"
#include "rtree/rtree3d.h"
#include "storage/env.h"
#include "storage/partition_manager.h"
#include "traj/segment_arena.h"
#include "traj/sub_trajectory.h"
#include "traj/trajectory_store.h"

namespace hermes::core {

/// \brief Parameters of the ReTraTree (Representative Trajectory Tree).
///
/// The SQL signature `QUT(D, Wi, We, τ, δ, t, d, γ)` maps to:
/// `tau`, `delta`, `t_align`, `d_assign`, `gamma`.
struct ReTraTreeParams {
  /// L1: temporal chunk width (τ).
  double tau = 3600.0;
  /// L2: sub-chunk width (δ); must divide into τ (enforced by rounding).
  double delta = 900.0;
  /// Max temporal misalignment between a piece and a representative for
  /// assignment (t).
  double t_align = 225.0;
  /// Max time-aware distance between a piece and a representative for
  /// cluster membership (d).
  double d_assign = 200.0;
  /// Outlier-partition size that triggers an S2T re-clustering run (γ).
  size_t gamma = 64;
  /// Minimum temporal overlap ratio used in distance evaluations.
  double min_overlap_ratio = 0.5;
  /// Minimum cluster size for a representative discovered by the buffer
  /// S2T run to be back-propagated.
  size_t min_new_cluster_size = 2;
  /// Time origin of the chunk grid.
  double origin = 0.0;
  /// S2T configuration for outlier-buffer re-clustering runs.
  S2TParams s2t;
};

/// \brief Maintenance counters (Fig. 2's loop, made observable), plus the
/// wall time the buffer re-clustering runs spent per phase.
///
/// All counters are order-independent sums, so a batch ingest reports the
/// same totals as the sequential loop at any thread count (timing fields
/// excepted — they are wall clocks).
struct ReTraTreeStats {
  uint64_t pieces_inserted = 0;
  uint64_t assigned_to_existing = 0;
  uint64_t sent_to_outliers = 0;
  uint64_t s2t_runs = 0;
  uint64_t representatives_created = 0;
  uint64_t reinserted_after_s2t = 0;
  uint64_t records_written = 0;
  uint64_t records_read = 0;
  /// Batch-ingest phase split (µs): parallel split/segmentation of the
  /// batch vs the per-sub-chunk apply fan-out.
  int64_t ingest_split_us = 0;
  int64_t ingest_apply_us = 0;
  /// Cumulative phase breakdown of all S2T re-clustering runs (µs),
  /// including the columnar arena snapshots they build.
  S2TTimings s2t_timings;
};

/// Default `hermes.hot_index_budget`: bytes of hot-tier snapshots a tree
/// may keep resident before LRU demotion kicks in.
inline constexpr size_t kDefaultHotIndexBudget = size_t{64} << 20;

/// \brief Immutable hot-tier snapshot of one on-disk partition: its
/// decoded records in append (RecordId) order plus an in-memory pg3D
/// R-tree over their bounds keyed by member ordinal.
///
/// Published with an atomic shared_ptr swap; a reader that loaded a
/// snapshot keeps it (and its `EpochPin`) alive through its own reference
/// until the probe finishes, so demotion/republish never invalidates an
/// in-flight read.
struct HotPartition {
  /// Members in append order — the order the cold path yields too (it
  /// sorts packed `RecordId`s, which are monotone in append order) —
  /// stored as the Decode(Encode(...)) record roundtrip so hot and cold
  /// reads are bit-identical.
  std::vector<traj::SubTrajectory> members;
  /// Bounds -> member ordinal; null for outlier snapshots (outlier reads
  /// are always full scans).
  std::unique_ptr<rtree::MemRTree3D> index;
  /// Budget accounting, fixed at publication time.
  size_t bytes = 0;
  /// Lifecycle accounting in the tree's `EpochPinRegistry` (live = hot
  /// snapshots still referenced somewhere, total = ever published).
  std::unique_ptr<traj::EpochPin> pin;
  /// LRU stamp of the last hot probe (tree-wide logical clock).
  mutable std::atomic<uint64_t> last_access{0};
};

/// \brief Hot-tier observability counters (surfaced by `SHOW STATS` and
/// `SHOW SERVICE STATS`).
struct HotTierStats {
  uint64_t qut_hot_probes = 0;
  uint64_t qut_cold_probes = 0;
  uint64_t hot_promotions = 0;
  uint64_t hot_demotions = 0;
  uint64_t hot_index_bytes = 0;
  /// Snapshots still alive (pin registry live count: published minus
  /// fully released — a demoted snapshot a reader still holds counts).
  uint64_t hot_partitions = 0;
  uint64_t hot_pins_total = 0;
};

/// \brief Cold-tier work aggregated across every open partition and
/// per-partition index — page fetches and lock acquisitions. A warm
/// hot-tier QUT probe must leave every field flat, which is how tests
/// assert the probe path performs zero page reads and takes zero
/// per-partition locks.
struct ColdIoStats {
  uint64_t heap_page_fetches = 0;  ///< Pager hits + misses (heap files).
  uint64_t heap_lock_acquisitions = 0;
  uint64_t index_nodes_visited = 0;
  uint64_t index_page_fetches = 0;
  uint64_t index_lock_acquisitions = 0;
};

/// \brief L3 entry: an in-memory representative plus its on-disk member
/// partition ("pg3D-Rtree-k" in Fig. 2: heap file + 3D R-tree).
struct RepresentativeEntry {
  traj::SubTrajectory representative;
  std::string partition_name;
  size_t member_count = 0;
  /// Per-partition member index over (x, y, t) bounds -> heap RecordId.
  std::unique_ptr<rtree::RTree3D> index;
  /// Hot-tier snapshot (null = cold). Probes go through
  /// `std::atomic_load` with no lock; publication swaps the pointer under
  /// the tree's hot-tier mutex. Mutable because promotion is a caching
  /// side effect of const read paths.
  mutable std::shared_ptr<const HotPartition> hot;
  /// Largest hot-tier budget under which this partition's snapshot was
  /// measured not to fit (0 = never failed). Read paths consult it to
  /// skip the promote-on-read scan + index build — which would fail
  /// again — until the budget is raised past it.
  mutable std::atomic<size_t> hot_unfit_budget{0};
};

/// \brief L2 node: one sub-chunk of the time domain with its
/// representatives and its outlier partition.
struct SubChunk {
  int64_t global_index = 0;
  double start = 0.0;
  double end = 0.0;
  std::vector<std::unique_ptr<RepresentativeEntry>> representatives;
  std::string outlier_partition;
  size_t outlier_count = 0;
  /// Next buffer size that may trigger re-clustering (prevents thrashing
  /// when residues alone still exceed gamma).
  size_t recluster_watermark = 0;
  /// Sequence of derived sub-trajectory ids handed out by this sub-chunk's
  /// re-clustering runs (see `ReTraTree::NextDerivedId`). Per-sub-chunk so
  /// concurrent apply tasks never contend — and so the ids are a pure
  /// function of the sub-chunk's own insertion history, which is what
  /// makes batch and sequential ingest bit-identical.
  uint64_t derived_seq = 0;
  /// Sequence behind this sub-chunk's representative partition names
  /// ("sc<i>_r<seq>"); per-sub-chunk for the same reason.
  uint64_t rep_seq = 0;
  /// Hot-tier snapshot of the outlier partition (see
  /// `RepresentativeEntry::hot`); dropped when re-clustering rebuilds the
  /// buffer.
  mutable std::shared_ptr<const HotPartition> hot_outliers;
  /// Failed-promotion memo for the outlier snapshot (see
  /// `RepresentativeEntry::hot_unfit_budget`).
  mutable std::atomic<size_t> hot_outliers_unfit_budget{0};
};

/// \brief L1 node: one temporal chunk holding its sub-chunks.
struct Chunk {
  int64_t index = 0;
  double start = 0.0;
  double end = 0.0;
  std::map<int64_t, SubChunk> sub_chunks;  // Keyed by global sub-chunk index.
};

/// Binary (de)serialization of sub-trajectories for partition records.
std::string EncodeSubTrajectory(const traj::SubTrajectory& st);
StatusOr<traj::SubTrajectory> DecodeSubTrajectory(const std::string& bytes);

/// Name of the catalog file a persistent ReTraTree keeps under its
/// directory (in-memory levels L1–L3; L4 lives in the partitions).
inline constexpr char kReTraTreeCatalog[] = "retratree.catalog";

/// \brief The ReTraTree: a 4-level structure for time-aware sub-trajectory
/// clustering (DMKD 2017).
///
///   L1  temporal chunks (width τ)            — in memory
///   L2  sub-chunks (width δ)                 — in memory
///   L3  cluster representatives              — in memory
///   L4  member/outlier partitions + R-trees  — on disk
///
/// Insertion splits trajectories at chunk/sub-chunk boundaries, assigns
/// each piece to the closest representative (within `d_assign`/`t_align`)
/// or to the sub-chunk's outlier partition; when the partition exceeds γ,
/// S2T-Clustering runs on it and its discovered representatives are
/// back-propagated into L3 (the architecture loop of Fig. 2).
class ReTraTree {
 public:
  /// Opens a tree storing partitions under `dir` of `env`. When a catalog
  /// written by `Save` exists there, the in-memory levels are restored
  /// from it (the passed structural parameters must match the persisted
  /// ones). `exec` (optional, not owned, must outlive the tree) is handed
  /// to the S2T re-clustering runs of the maintenance loop so their
  /// arena build, index build, and vote kernel fan out.
  static StatusOr<std::unique_ptr<ReTraTree>> Open(
      storage::Env* env, const std::string& dir, ReTraTreeParams params,
      exec::ExecContext* exec = nullptr);

  /// Persists the in-memory levels (L1–L3) to the catalog file and flushes
  /// every partition and index. After `Save`, `Open` on the same dir
  /// restores an equivalent tree.
  Status Save();

  /// Inserts a whole trajectory (id used for provenance only).
  Status Insert(const traj::Trajectory& trajectory,
                traj::TrajectoryId source_id);

  /// Bulk-inserts every trajectory of a store by delegating to
  /// `InsertBatch`. `exec` overrides the tree's own context for this batch
  /// (nullptr = use the tree's; a tree without one applies sequentially).
  Status InsertStore(const traj::TrajectoryStore& store,
                     exec::ExecContext* exec = nullptr);

  /// \brief Two-phase batch ingest — the Fig. 2 maintenance loop made
  /// thread-scalable.
  ///
  /// Phase 1 (split) fans out over trajectories: each is sliced at
  /// sub-chunk boundaries and bound by `kMaxSamplesPerPiece`, and every
  /// piece receives its sub-trajectory id up front via a prefix sum over
  /// per-trajectory piece counts — exactly the ids the sequential
  /// `Insert` loop's `next_sub_id_++` would hand out. Phase 2 (apply)
  /// fans out one task per sub-chunk: L3 assignment, heap-file append,
  /// pg3D-Rtree insert, and outlier re-clustering all run concurrently
  /// because each sub-chunk owns disjoint partitions and per-sub-chunk
  /// derived-id/partition-name sequences. The resulting catalog is
  /// bit-identical to the sequential loop at any thread count.
  ///
  /// A trajectory with fewer than 2 samples fails the whole batch with
  /// `InvalidArgument` before any mutation (the sequential loop would
  /// abort mid-way instead).
  Status InsertBatch(const traj::TrajectoryStore& store,
                     exec::ExecContext* exec);

  /// Range flavor for incremental ingest: inserts trajectories
  /// [first, first + count) of `store`, with their store ids as the
  /// provenance ids — exactly what the sequential `Insert` loop over that
  /// range would do. The service's ingest worker drains each newly
  /// appended batch into the shared tree through this without re-feeding
  /// the whole store.
  Status InsertBatch(const traj::TrajectoryStore& store,
                     exec::ExecContext* exec, traj::TrajectoryId first,
                     size_t count);

  const ReTraTreeParams& params() const { return params_; }
  const std::map<int64_t, Chunk>& chunks() const { return chunks_; }
  /// Snapshot of the ingest/read counters, copied under `stats_mu_` so a
  /// caller never observes a torn update from a concurrent apply task.
  ReTraTreeStats stats() const {
    common::MutexLock lock(&stats_mu_);
    return stats_;
  }

  /// Sub-chunks whose interval intersects [t0, t1), ordered by time.
  std::vector<const SubChunk*> SubChunksIn(double t0, double t1) const;

  /// Reads all members of a representative's partition.
  StatusOr<std::vector<traj::SubTrajectory>> ReadMembers(
      const RepresentativeEntry& entry) const;

  /// Reads members whose lifespan intersects [t0, t1), using the
  /// partition's pg3D-Rtree to avoid a full scan.
  StatusOr<std::vector<traj::SubTrajectory>> ReadMembersInWindow(
      const RepresentativeEntry& entry, double t0, double t1) const;

  /// Reads the outlier partition of a sub-chunk.
  StatusOr<std::vector<traj::SubTrajectory>> ReadOutliers(
      const SubChunk& sc) const;

  // ---- Hot index tier (docs/ARCHITECTURE.md "Hot/cold index tiers") ---
  //
  // The three read methods above transparently serve from an immutable
  // in-memory snapshot when one is published for the partition (probe:
  // one atomic load, zero locks, zero page I/O) and fall back to the
  // file-backed heap + GiST otherwise, promoting the partition on the
  // way out. Appends keep live snapshots coherent by republishing them;
  // re-clustering drops the outlier snapshot with the buffer. Snapshots
  // never change query results — only where the bytes are read from.

  /// Sets the hot-tier byte budget. Shrinking demotes LRU snapshots
  /// immediately; 0 disables the tier and demotes everything.
  void SetHotIndexBudget(size_t bytes);
  size_t hot_index_budget() const {
    return hot_index_budget_.load(std::memory_order_relaxed);
  }
  HotTierStats hot_stats() const;
  ColdIoStats cold_io_stats() const;
  /// Registry every hot snapshot pins (tests watch live/total through it).
  const std::shared_ptr<traj::EpochPinRegistry>& hot_pin_registry() const {
    return hot_pins_;
  }

  /// Total representatives across all sub-chunks.
  size_t TotalRepresentatives() const;

  /// Validates structural invariants (sub-chunk intervals, member counts,
  /// index consistency).
  Status Validate() const;

  Status Flush();

 private:
  ReTraTree(storage::Env* env, std::string dir, ReTraTreeParams params,
            std::unique_ptr<storage::PartitionManager> partitions,
            exec::ExecContext* exec);

  /// One boundary-trimmed, size-bounded piece awaiting apply, tagged with
  /// the sub-chunk it was bucketed into.
  struct PendingPiece {
    int64_t sub_chunk = 0;
    traj::SubTrajectory st;
  };

  int64_t ChunkIndexOf(double t) const;
  int64_t SubChunkIndexOf(double t) const;

  std::string CatalogPath() const;
  Status LoadCatalog();

  /// Returns (creating on demand) the sub-chunk containing time `t`.
  SubChunk* GetOrCreateSubChunk(double t);
  /// Same, addressed by global sub-chunk index (the batch path's bucket
  /// key, so bucketing and lookup cannot disagree on boundary times).
  SubChunk* GetOrCreateSubChunkByIndex(int64_t si);

  /// Splits a trajectory at sub-chunk boundaries and the record-size bound
  /// into pieces with provenance but *no ids yet* (pure: no tree state is
  /// touched) — shared by `Insert` and the batch split phase so the two
  /// paths cannot diverge.
  Status SplitTrajectory(const traj::Trajectory& trajectory,
                         traj::TrajectoryId source_id,
                         std::vector<PendingPiece>* out) const;

  /// Routes one piece into `sc`; `allow_recluster` guards against
  /// recursion from the S2T loop. Only touches `sc`-owned state (plus the
  /// stats under their mutex), which is what makes the per-sub-chunk
  /// apply fan-out safe. `ctx` is handed to any S2T re-clustering run the
  /// piece triggers (a batch's override context, or the tree's own).
  Status InsertPiece(SubChunk* sc, traj::SubTrajectory piece,
                     bool allow_recluster, exec::ExecContext* ctx);

  /// Appends a member to a representative's partition + index.
  Status AppendMember(RepresentativeEntry* entry,
                      const traj::SubTrajectory& member);

  /// The Fig. 2 loop: voting/segmentation/sampling over the outlier buffer,
  /// new representatives back-propagated, members redistributed. The S2T
  /// run fans out over `ctx` (results are bit-identical either way).
  Status ReclusterOutliers(SubChunk* sc, exec::ExecContext* ctx);

  /// Full scan + decode of one partition, in append order (the shared
  /// cold-read body of `ReadMembers`/`ReadOutliers` and the re-clustering
  /// buffer drain). Counts the records read.
  StatusOr<std::vector<traj::SubTrajectory>> ScanPartition(
      const std::string& name) const;

  using HotSlot = std::shared_ptr<const HotPartition>;

  /// Largest snapshot `ExtendHotSnapshot` will republish instead of
  /// demoting (see its comment).
  static constexpr size_t kMaxHotExtendMembers = 4096;

  /// Publishes a snapshot for `slot` from just-decoded records (a cold
  /// read's side effect). No-op when the tier is disabled, the slot
  /// raced hot, or the snapshot alone exceeds the budget — the latter is
  /// recorded in `unfit_budget` (member bytes are estimated before the
  /// index is built, so a hopeless promotion never pays the build).
  void MaybePromote(HotSlot* slot, std::atomic<size_t>* unfit_budget,
                    const std::vector<traj::SubTrajectory>& members,
                    bool with_index) const;
  /// True when promoting this slot could succeed: the tier is enabled
  /// and no failed promotion has been recorded at (or above) the current
  /// budget. Window reads consult this before paying the promote-on-read
  /// full scan.
  bool PromotionMightFit(const std::atomic<size_t>& unfit_budget) const {
    const size_t budget = hot_index_budget();
    if (budget == 0) return false;
    const size_t failed_at = unfit_budget.load(std::memory_order_relaxed);
    return failed_at == 0 || budget > failed_at;
  }
  /// Copy-on-write republish of a live snapshot after an append — the
  /// drain worker's incremental catch-up extends the hot tree the same
  /// way it extends the Gist. No-op when the slot is cold. Past
  /// `kMaxHotExtendMembers` the per-append rebuild tax outweighs the
  /// tier's benefit, so the slot is demoted instead (the next read
  /// re-promotes once); the slot is also demoted if the member fails the
  /// encode/decode roundtrip, because the record is already durable and
  /// a stale snapshot would silently hide it from hot reads.
  Status ExtendHotSnapshot(HotSlot* slot,
                           const traj::SubTrajectory& member) const;
  /// Drops a live snapshot.
  void DemoteLocked(HotSlot* slot) const REQUIRES(hot_mu_);
  /// LRU-demotes snapshots until the budget is met.
  void EnforceBudgetLocked() const REQUIRES(hot_mu_);
  void TouchHot(const HotPartition& hot) const {
    hot.last_access.store(
        hot_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }
  static size_t HotBytesOf(const HotPartition& hot);
  /// Heap bytes of the decoded members alone (the index-free part of
  /// `HotBytesOf`) — computable before copying them into a snapshot.
  static size_t MemberBytes(const std::vector<traj::SubTrajectory>& members);

  /// Id for a sub-trajectory derived by a re-clustering run (new
  /// representative, re-labeled member, or residue): bit 63 set, the
  /// zig-zagged sub-chunk index in bits [62:24], and the sub-chunk's own
  /// sequence in bits [23:0]. Disjoint from the piece-id space
  /// (`next_sub_id_`), so pre-assigning piece ids by prefix sum stays
  /// exact no matter how many ids re-clustering consumes.
  uint64_t NextDerivedId(SubChunk* sc);

  storage::Env* env_;
  std::string dir_;
  ReTraTreeParams params_;
  std::unique_ptr<storage::PartitionManager> partitions_;
  exec::ExecContext* exec_;  // Not owned; nullptr = sequential.

  std::map<int64_t, Chunk> chunks_;
  traj::SubTrajectoryId next_sub_id_ = 0;
  /// Serializes stats updates from concurrent apply tasks.
  mutable common::Mutex stats_mu_;
  /// Cold read paths count records read.
  mutable ReTraTreeStats stats_ GUARDED_BY(stats_mu_);

  // ---- Hot tier state. The probe path touches only the atomics and the
  // per-slot shared_ptr (via std::atomic_load); hot_mu_ guards
  // publication, demotion, budget changes, and the slot registry —
  // it is never taken on a hot hit.
  mutable common::Mutex hot_mu_;
  /// Every slot that ever published a snapshot (slot addresses are
  /// stable: entries and sub-chunks are never destroyed while the tree
  /// lives). Demoted slots stay listed holding null.
  mutable std::vector<HotSlot*> hot_slots_ GUARDED_BY(hot_mu_);
  std::atomic<size_t> hot_index_budget_{kDefaultHotIndexBudget};
  mutable std::atomic<size_t> hot_bytes_{0};
  mutable std::atomic<uint64_t> hot_clock_{0};
  mutable std::atomic<uint64_t> qut_hot_probes_{0};
  mutable std::atomic<uint64_t> qut_cold_probes_{0};
  mutable std::atomic<uint64_t> hot_promotions_{0};
  mutable std::atomic<uint64_t> hot_demotions_{0};
  std::shared_ptr<traj::EpochPinRegistry> hot_pins_ =
      std::make_shared<traj::EpochPinRegistry>();
};

}  // namespace hermes::core

#endif  // HERMES_CORE_RETRATREE_H_
