#ifndef HERMES_CORE_S2T_CLUSTERING_H_
#define HERMES_CORE_S2T_CLUSTERING_H_

#include <vector>

#include "clustering/greedy_clustering.h"
#include "common/statusor.h"
#include "exec/exec_context.h"
#include "rtree/rtree3d.h"
#include "sampling/saco_sampling.h"
#include "segmentation/nats.h"
#include "traj/segment_arena.h"
#include "traj/trajectory_store.h"
#include "voting/voting.h"

namespace hermes::core {

/// \brief All parameters of Sampling-based Sub-Trajectory Clustering.
///
/// Phase 1 (NaTS): `voting` + `segmentation`; phase 2 (SaCO): `sampling` +
/// `clustering`. `SetSigma`/`SetEpsilon` keep the bandwidths consistent
/// across phases.
struct S2TParams {
  voting::VotingParams voting;
  segmentation::NatsParams segmentation;
  sampling::SamplingParams sampling;
  clustering::ClusteringParams clustering;
  /// Use the pg3D-Rtree voting engine (the in-DBMS fast path).
  bool use_index = true;

  /// Sets the spatial bandwidth sigma everywhere it appears. All three
  /// phases that interpret the bandwidth (voting, NaTS segmentation,
  /// SaCO sampling) receive the same value, so a single call cannot leave
  /// them silently diverged.
  S2TParams& SetSigma(double sigma) {
    voting.sigma = sigma;
    segmentation.sigma = sigma;
    sampling.sigma = sigma;
    return *this;
  }
  /// Sets the cluster radius epsilon.
  S2TParams& SetEpsilon(double eps) {
    clustering.epsilon = eps;
    return *this;
  }
};

/// \brief Wall-clock phase breakdown (microseconds), reported by the
/// benchmark harness.
struct S2TTimings {
  int64_t arena_build_us = 0;
  int64_t index_build_us = 0;
  int64_t voting_us = 0;
  int64_t segmentation_us = 0;
  int64_t sampling_us = 0;
  int64_t clustering_us = 0;
  // Sub-phases (not part of TotalUs): the probe/kernel split of voting_us
  // and the DP/materialize split of segmentation_us — the four phases the
  // exec engine fans out, tracked separately so thread sweeps show where
  // the speedup lands.
  int64_t voting_probe_us = 0;
  int64_t voting_kernel_us = 0;
  int64_t segmentation_dp_us = 0;
  int64_t segmentation_materialize_us = 0;

  int64_t TotalUs() const {
    return arena_build_us + index_build_us + voting_us + segmentation_us +
           sampling_us + clustering_us;
  }

  /// Records every phase into `stats` under "s2t_<phase>" keys (repeat
  /// exports accumulate). This is how a SQL session surfaces the
  /// breakdown as typed columns (`SHOW STATS`) instead of log scraping.
  void ExportTo(exec::ExecStats* stats) const;

  /// Field-wise accumulation (e.g. the ReTraTree's cumulative S2T stats).
  S2TTimings& operator+=(const S2TTimings& o) {
    arena_build_us += o.arena_build_us;
    index_build_us += o.index_build_us;
    voting_us += o.voting_us;
    segmentation_us += o.segmentation_us;
    sampling_us += o.sampling_us;
    clustering_us += o.clustering_us;
    voting_probe_us += o.voting_probe_us;
    voting_kernel_us += o.voting_kernel_us;
    segmentation_dp_us += o.segmentation_dp_us;
    segmentation_materialize_us += o.segmentation_materialize_us;
    return *this;
  }
};

/// \brief Full output of an S2T-Clustering run.
struct S2TResult {
  /// All sub-trajectories produced by NaTS (cluster members and outliers
  /// index into this array).
  std::vector<traj::SubTrajectory> sub_trajectories;
  /// Indices of the sampled representatives, in selection order.
  std::vector<size_t> representatives;
  /// Clusters + outliers over `sub_trajectories`.
  clustering::ClusteringResult clustering;
  /// Raw voting descriptors (per trajectory, per segment).
  voting::VotingResult voting;
  S2TTimings timings;

  size_t NumClusters() const { return clustering.clusters.size(); }
  size_t NumOutliers() const { return clustering.outliers.size(); }
};

/// \brief Sampling-based Sub-Trajectory Clustering (EDBT 2017): voting →
/// segmentation → sampling → greedy clustering + outlier detection, over a
/// `TrajectoryStore`.
class S2TClustering {
 public:
  explicit S2TClustering(S2TParams params) : params_(std::move(params)) {}

  const S2TParams& params() const { return params_; }

  /// Runs the full pipeline. A columnar `SegmentArena` is snapshotted
  /// first and shared by index construction and voting (its cost is
  /// reported in `timings.arena_build_us`); when `params.use_index` a
  /// transient in-memory pg3D-Rtree is STR-built over the arena (reported
  /// in `timings.index_build_us`). `ctx` parallelizes the arena build,
  /// the STR sort phases, the voting probe (per-chunk read handles over
  /// the freshly built index file) and kernel, and both NaTS segmentation
  /// passes; results are identical at any thread count.
  StatusOr<S2TResult> Run(const traj::TrajectoryStore& store,
                          exec::ExecContext* ctx = nullptr) const;

  /// Runs with a caller-provided segment index (e.g. the ReTraTree's
  /// per-partition index, or the scenario-2 baseline's freshly built one).
  /// The probe stays on the calling thread here — a borrowed handle's
  /// backing file is not known to be re-openable — but every other phase
  /// still fans out over `ctx`.
  StatusOr<S2TResult> RunWithIndex(const traj::TrajectoryStore& store,
                                   const rtree::RTree3D& index,
                                   exec::ExecContext* ctx = nullptr) const;

 private:
  StatusOr<S2TResult> RunPhases(const traj::SegmentArena& arena,
                                const traj::TrajectoryStore& store,
                                const rtree::RTree3D* index,
                                const voting::IndexProbeSource* probe,
                                S2TTimings timings,
                                exec::ExecContext* ctx) const;

  S2TParams params_;
};

}  // namespace hermes::core

#endif  // HERMES_CORE_S2T_CLUSTERING_H_
