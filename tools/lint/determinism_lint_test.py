#!/usr/bin/env python3
"""Fixture tests for determinism_lint.py.

For every rule: a violating snippet is flagged, an innocuous snippet
passes, and a HERMES-LINT-ALLOW escape suppresses the finding. Run
directly (`python3 determinism_lint_test.py`) or via ctest
(`determinism_lint_selftest`).
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import determinism_lint as lint  # noqa: E402


def rules_of(findings):
    return [f.rule for f in findings]


class RawRngTest(unittest.TestCase):
    def test_flags_random_device(self):
        out = lint.lint_text("src/foo.cc", "std::random_device rd;\n")
        self.assertEqual(rules_of(out), ["raw-rng"])

    def test_flags_rand_and_srand(self):
        out = lint.lint_text("src/foo.cc", "srand(42);\nint x = rand();\n")
        self.assertEqual(rules_of(out), ["raw-rng", "raw-rng"])

    def test_word_boundary_no_false_positive(self):
        # 'operand(' / 'strand(' must not match rand(.
        out = lint.lint_text("src/foo.cc", "auto v = operand(strand(1));\n")
        self.assertEqual(out, [])

    def test_exempt_in_rng_and_datagen(self):
        for path in ("src/common/rng.cc", "src/datagen/maritime.cc"):
            out = lint.lint_text(path, "std::random_device rd;\n")
            self.assertEqual(out, [], path)

    def test_escape_honored(self):
        src = ("// HERMES-LINT-ALLOW(raw-rng): seeding doc example only\n"
               "std::random_device rd;\n")
        self.assertEqual(lint.lint_text("src/foo.cc", src), [])


class WallClockTest(unittest.TestCase):
    def test_flags_time_nullptr(self):
        out = lint.lint_text("src/foo.cc", "auto t = time(nullptr);\n")
        self.assertEqual(rules_of(out), ["wall-clock"])

    def test_flags_system_clock(self):
        out = lint.lint_text(
            "src/foo.cc", "auto n = std::chrono::system_clock::now();\n")
        self.assertEqual(rules_of(out), ["wall-clock"])

    def test_steady_clock_allowed(self):
        out = lint.lint_text(
            "src/foo.cc", "auto n = std::chrono::steady_clock::now();\n")
        self.assertEqual(out, [])

    def test_escape_honored(self):
        src = ("auto t = time(nullptr);  "
               "// HERMES-LINT-ALLOW(wall-clock): log timestamp only\n")
        self.assertEqual(lint.lint_text("src/foo.cc", src), [])


class ThreadIdTest(unittest.TestCase):
    def test_flags_get_id(self):
        out = lint.lint_text(
            "src/foo.cc", "auto id = std::this_thread::get_id();\n")
        self.assertEqual(rules_of(out), ["thread-id"])

    def test_plain_thread_use_allowed(self):
        out = lint.lint_text("src/foo.cc", "std::thread t([] {}); t.join();\n")
        self.assertEqual(out, [])

    def test_escape_honored(self):
        src = ("// HERMES-LINT-ALLOW(thread-id): debug log tag only\n"
               "auto id = std::this_thread::get_id();\n")
        self.assertEqual(lint.lint_text("src/foo.cc", src), [])


class PointerSortTest(unittest.TestCase):
    def test_flags_pointer_value_comparator(self):
        src = ("std::sort(v.begin(), v.end(),\n"
               "          [](const Node* a, const Node* b) { return a < b; });\n")
        out = lint.lint_text("src/foo.cc", src)
        self.assertEqual(rules_of(out), ["pointer-sort"])

    def test_key_comparison_through_pointer_allowed(self):
        src = ("std::sort(v.begin(), v.end(),\n"
               "          [](const Node* a, const Node* b) {\n"
               "            return a->key < b->key; });\n")
        self.assertEqual(lint.lint_text("src/foo.cc", src), [])

    def test_value_comparator_allowed(self):
        src = ("std::sort(v.begin(), v.end(),\n"
               "          [](const Item& a, const Item& b) { return a < b; });\n")
        self.assertEqual(lint.lint_text("src/foo.cc", src), [])

    def test_escape_honored(self):
        src = ("// HERMES-LINT-ALLOW(pointer-sort): arena-ordered, stable\n"
               "std::sort(v.begin(), v.end(),\n"
               "          [](const Node* a, const Node* b) { return a < b; });\n")
        self.assertEqual(lint.lint_text("src/foo.cc", src), [])


class UnorderedIterationTest(unittest.TestCase):
    def test_flags_range_for_over_local(self):
        src = ("std::unordered_map<int, int> m;\n"
               "for (const auto& [k, v] : m) out.push_back(k);\n")
        out = lint.lint_text("src/foo.cc", src)
        self.assertEqual(rules_of(out), ["unordered-iteration"])

    def test_flags_member_declared_in_header(self):
        header = "std::unordered_map<PageId, Page*> frames_ GUARDED_BY(mu_);\n"
        src = "for (auto& [id, page] : frames_) Write(page);\n"
        out = lint.lint_text("src/foo.cc", src, extra_decls=header)
        self.assertEqual(rules_of(out), ["unordered-iteration"])

    def test_ordered_map_allowed(self):
        src = ("std::map<int, int> m;\n"
               "for (const auto& [k, v] : m) out.push_back(k);\n")
        self.assertEqual(lint.lint_text("src/foo.cc", src), [])

    def test_lookup_without_iteration_allowed(self):
        src = ("std::unordered_map<int, int> m;\n"
               "auto it = m.find(3);\n")
        self.assertEqual(lint.lint_text("src/foo.cc", src), [])

    def test_escape_with_wrapped_rationale_honored(self):
        src = ("std::unordered_map<int, int> m;\n"
               "// HERMES-LINT-ALLOW(unordered-iteration): each write goes\n"
               "// to its own slot, so order cannot matter.\n"
               "for (auto& [k, v] : m) slots[k] = v;\n")
        self.assertEqual(lint.lint_text("src/foo.cc", src), [])


class EscapeScopeTest(unittest.TestCase):
    def test_escape_does_not_leak_past_code(self):
        # An ALLOW above unrelated code must not suppress later findings.
        src = ("// HERMES-LINT-ALLOW(raw-rng): for the line below\n"
               "std::random_device a;\n"
               "int x = 0;\n"
               "std::random_device b;\n")
        out = lint.lint_text("src/foo.cc", src)
        self.assertEqual(rules_of(out), ["raw-rng"])
        self.assertEqual(out[0].line, 4)

    def test_escape_only_named_rule(self):
        src = ("// HERMES-LINT-ALLOW(wall-clock): wrong rule named\n"
               "std::random_device rd;\n")
        out = lint.lint_text("src/foo.cc", src)
        self.assertEqual(rules_of(out), ["raw-rng"])


class RepoIntegrationTest(unittest.TestCase):
    def test_src_tree_is_clean(self):
        root = os.path.normpath(
            os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         os.pardir, os.pardir))
        files = lint.collect_files(root, ["src"])
        self.assertGreater(len(files), 50)
        findings = []
        for rel in files:
            findings.extend(lint.lint_file(root, rel))
        self.assertEqual([str(f) for f in findings], [])


if __name__ == "__main__":
    unittest.main()
