#!/usr/bin/env python3
"""Determinism linter for the Hermes C++ tree.

The repository's contract is bit-identical query results at any thread
count (see docs/ARCHITECTURE.md "Determinism"). This linter statically
bans the usual ways that contract gets broken by accident:

  raw-rng              Direct use of rand()/srand()/std::random_device &
                       friends. All randomness must flow through the
                       seeded, splittable generator in src/common/rng.*
                       (src/datagen/ is also exempt: it owns its seeds).
  wall-clock           Wall-clock reads (time(nullptr), system_clock,
                       gettimeofday). Timing *stats* belong on
                       steady_clock, which is allowed; wall clocks leak
                       the run's start time into anything they touch.
  pointer-sort         Sort comparators that compare raw pointer values.
                       Heap addresses differ run to run, so the order is
                       nondeterministic; compare a stable key instead.
  unordered-iteration  Range-for over a std::unordered_map/unordered_set.
                       Iteration order is unspecified (and differs across
                       libstdc++/libc++ and seeds); anything built from
                       such a loop inherits that order. Iterate a sorted
                       copy, or escape the site if it is provably
                       order-insensitive.
  thread-id            std::this_thread::get_id / pthread_self. Thread
                       identity must never select data or order results.

Escape hatch: a site that is genuinely order-insensitive (e.g. flushing
every dirty page, in any order, to position-addressed storage) carries

    // HERMES-LINT-ALLOW(<rule>): <why this cannot affect results>

on the same or the immediately preceding line. The rationale is part of
the contract — an ALLOW without one still suppresses, but reviewers
should reject it.

Exit status: 0 when clean, 1 when findings were printed, 2 on usage
errors. Run as `determinism_lint.py --root <repo>` (scans src/) or pass
explicit files.
"""

import argparse
import os
import re
import sys

# Rule name -> short description used in finding messages.
RULES = {
    "raw-rng": "raw RNG outside common/rng + datagen",
    "wall-clock": "wall-clock read",
    "pointer-sort": "sort comparator ordering by pointer value",
    "unordered-iteration": "iteration over unordered container",
    "thread-id": "thread-identity dependence",
}

# Paths (relative, '/'-separated) where a rule does not apply at all.
RULE_EXEMPT_PREFIXES = {
    "raw-rng": ("src/common/rng.", "src/datagen/"),
}

ALLOW_RE = re.compile(r"HERMES-LINT-ALLOW\(\s*([a-z\-,\s]+?)\s*\)")

SIMPLE_RULES = [
    # (rule, compiled pattern, message)
    ("raw-rng", re.compile(r"std::random_device|\brandom_device\b"),
     "std::random_device is nondeterministic; use common::Rng"),
    ("raw-rng", re.compile(r"\bs?rand\s*\("),
     "rand()/srand() draw from hidden global state; use common::Rng"),
    ("raw-rng", re.compile(r"\bd?rand48\s*\(|\brandom\s*\(\s*\)"),
     "libc RNG; use common::Rng"),
    ("wall-clock", re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)|std::time\s*\("),
     "time() reads the wall clock; results must not depend on it"),
    ("wall-clock", re.compile(r"\bsystem_clock\b|\bgettimeofday\s*\("),
     "wall clock; use steady_clock for timings, never for results"),
    ("thread-id", re.compile(r"this_thread::get_id|\bpthread_self\s*\("),
     "thread identity must not influence data or ordering"),
]

SORT_CALL_RE = re.compile(r"\b(?:std::)?(?:stable_sort|partial_sort|sort|nth_element|min_element|max_element)\s*\(")
LAMBDA_RE = re.compile(r"\[[^\]]*\]\s*\(([^)]*)\)\s*(?:->\s*\w+\s*)?\{([^}]*)\}")
UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _allowed_rules(lines, idx):
    """Rules escaped via HERMES-LINT-ALLOW on line `idx` or in the
    contiguous comment block immediately above it (so the rationale may
    wrap onto further comment lines)."""
    allowed = set()
    if 0 <= idx < len(lines):
        m = ALLOW_RE.search(lines[idx])
        if m:
            allowed.update(r.strip() for r in m.group(1).split(","))
    i = idx - 1
    while i >= 0 and lines[i].lstrip().startswith("//"):
        m = ALLOW_RE.search(lines[i])
        if m:
            allowed.update(r.strip() for r in m.group(1).split(","))
        i -= 1
    return allowed


def _rule_exempt(rule, relpath):
    rel = relpath.replace(os.sep, "/")
    return any(rel.startswith(p) or ("/" + p) in rel
               for p in RULE_EXEMPT_PREFIXES.get(rule, ()))


def _strip_line_comment(line):
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def _template_end(text, start):
    """Index one past the '>' matching the '<' at text[start] ('<')."""
    depth = 0
    for i in range(start, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":
            break  # Malformed / not a declaration; bail out.
    return -1


def _unordered_names(text):
    """Identifiers declared with an unordered container type in `text`."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        open_angle = text.find("<", m.start())
        end = _template_end(text, open_angle)
        if end < 0:
            continue
        # After the closing '>' of the type: skip annotation macros and
        # whitespace, then take the declared identifier (if any).
        rest = text[end:end + 160]
        dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)", rest)
        if not dm:
            continue
        name = dm.group(1)
        if name in ("const", "GUARDED_BY"):  # e.g. `unordered_map<...> x GUARDED_BY(...)`
            dm2 = re.match(r"\s*([A-Za-z_]\w*)", rest[dm.end():])
            if name == "const" and dm2:
                name = dm2.group(1)
            else:
                continue
        names.add(name)
    return names


def _check_pointer_sort(relpath, lines, findings):
    """Flag sort-family comparators that order by raw pointer value."""
    n = len(lines)
    for i, line in enumerate(lines):
        if not SORT_CALL_RE.search(_strip_line_comment(line)):
            continue
        window = " ".join(_strip_line_comment(l) for l in lines[i:i + 8])
        for lam in LAMBDA_RE.finditer(window):
            params, body = lam.group(1), lam.group(2)
            ptr_params = []
            for p in params.split(","):
                p = p.strip()
                if "*" in p:
                    ids = IDENT_RE.findall(p)
                    if ids:
                        ptr_params.append(ids[-1])
            if len(ptr_params) < 2:
                continue
            a, b = re.escape(ptr_params[0]), re.escape(ptr_params[1])
            # A bare `a < b` / `b < a` on the pointer params themselves —
            # `a->key < b->key` dereferences and is fine.
            if re.search(rf"(?<![\w>.]){a}\s*[<>]\s*{b}(?!\s*->)|(?<![\w>.]){b}\s*[<>]\s*{a}(?!\s*->)", body):
                if "pointer-sort" not in _allowed_rules(lines, i):
                    findings.append(Finding(
                        relpath, i + 1, "pointer-sort",
                        "comparator orders by raw pointer value; compare a "
                        "stable key instead"))
    del n


def _check_unordered_iteration(relpath, text, lines, findings, extra_decls=""):
    names = _unordered_names(text) | _unordered_names(extra_decls)
    if not names:
        return
    name_alt = "|".join(re.escape(s) for s in sorted(names))
    # `for (... : container)` — optionally through obj. / obj-> / *.
    iter_re = re.compile(
        rf"\bfor\s*\([^;()]*:\s*\*?(?:[\w\]\[.>-]+(?:\.|->))?({name_alt})\s*\)")
    for i, line in enumerate(lines):
        code = _strip_line_comment(line)
        m = iter_re.search(code)
        if m is None and RANGE_FOR_RE.search(code) and code.rstrip().endswith((":",)):
            # Range-for split across lines: join the next line.
            joined = code + " " + (_strip_line_comment(lines[i + 1]) if i + 1 < len(lines) else "")
            m = iter_re.search(joined)
        if m is None:
            continue
        if "unordered-iteration" in _allowed_rules(lines, i):
            continue
        findings.append(Finding(
            relpath, i + 1, "unordered-iteration",
            f"range-for over unordered container '{m.group(1)}'; iterate a "
            "sorted copy or prove order-insensitivity with an ALLOW"))


def lint_text(relpath, text, extra_decls=""):
    """Lints one file's contents; returns a list of Finding.

    `extra_decls` carries declarations visible to this file but written
    elsewhere (in practice: the paired header of a .cc, whose unordered
    members the .cc iterates).
    """
    findings = []
    lines = text.splitlines()
    for i, line in enumerate(lines):
        code = _strip_line_comment(line)
        allowed = None  # Computed lazily; most lines match nothing.
        for rule, pattern, message in SIMPLE_RULES:
            if _rule_exempt(rule, relpath):
                continue
            if pattern.search(code):
                if allowed is None:
                    allowed = _allowed_rules(lines, i)
                if rule in allowed:
                    continue
                findings.append(Finding(relpath, i + 1, rule, message))
    _check_pointer_sort(relpath, lines, findings)
    _check_unordered_iteration(relpath, text, lines, findings, extra_decls)
    return findings


def lint_file(root, relpath):
    with open(os.path.join(root, relpath), encoding="utf-8") as f:
        text = f.read()
    extra = ""
    if relpath.endswith(".cc"):
        header = os.path.join(root, relpath[:-3] + ".h")
        if os.path.exists(header):
            with open(header, encoding="utf-8") as f:
                extra = f.read()
    return lint_text(relpath, text, extra)


def collect_files(root, subdirs):
    out = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for fn in sorted(filenames):
                if fn.endswith((".cc", ".h")):
                    out.append(os.path.relpath(os.path.join(dirpath, fn), root))
    return sorted(out)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--dirs", nargs="*", default=["src"],
                    help="directories under --root to scan (default: src)")
    ap.add_argument("files", nargs="*",
                    help="explicit files (relative to --root); overrides --dirs")
    args = ap.parse_args(argv)

    files = args.files or collect_files(args.root, args.dirs)
    if not files:
        print("determinism_lint: no files to scan", file=sys.stderr)
        return 2

    findings = []
    for rel in files:
        findings.extend(lint_file(args.root, rel))
    for f in findings:
        print(f)
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"determinism_lint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
