#!/usr/bin/env python3
"""Warn-only diff of two BENCH_s2t.json files (perf-trajectory tracking).

Usage: bench_diff.py OLD.json NEW.json [--threshold RATIO]

Matches runs by (flights, threads) and compares wall_ms plus each
per-phase *_ms field. Regressions beyond the threshold (default 1.25x)
are printed as GitHub Actions ::warning:: lines; the exit code is always
0 — CI hosts are noisy, so this records the trajectory without gating.
"""

import argparse
import json
import sys

PHASES = [
    "wall_ms",
    "arena_build_ms",
    "index_build_ms",
    "voting_ms",
    "voting_probe_ms",
    "voting_kernel_ms",
    "segmentation_ms",
    "segmentation_dp_ms",
    "segmentation_materialize_ms",
    "sampling_ms",
    "clustering_ms",
]
# Below this, ratios are timer noise, not signal.
MIN_MS = 1.0


def load_runs(path):
    with open(path) as f:
        data = json.load(f)
    return {(r["flights"], r["threads"]): r for r in data.get("runs", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="warn when new > old * THRESHOLD (default 1.25)")
    args = parser.parse_args()

    try:
        old_runs = load_runs(args.old)
        new_runs = load_runs(args.new)
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_diff: cannot compare ({e}); skipping")
        return 0

    warned = 0
    compared = 0
    for key in sorted(set(old_runs) & set(new_runs)):
        old, new = old_runs[key], new_runs[key]
        flights, threads = key
        for phase in PHASES:
            if phase not in old or phase not in new:
                continue
            o, n = float(old[phase]), float(new[phase])
            compared += 1
            if o < MIN_MS and n < MIN_MS:
                continue
            if n > max(o, MIN_MS) * args.threshold:
                print(f"::warning title=bench_s2t regression::"
                      f"flights={flights} threads={threads} {phase}: "
                      f"{o:.3f}ms -> {n:.3f}ms "
                      f"({n / max(o, 1e-9):.2f}x)")
                warned += 1
    only_old = sorted(set(old_runs) - set(new_runs))
    only_new = sorted(set(new_runs) - set(old_runs))
    if only_old:
        print(f"bench_diff: points dropped since previous run: {only_old}")
    if only_new:
        print(f"bench_diff: new points (no baseline): {only_new}")
    print(f"bench_diff: compared {compared} phase totals over "
          f"{len(set(old_runs) & set(new_runs))} matching points; "
          f"{warned} regression warning(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
