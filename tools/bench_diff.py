#!/usr/bin/env python3
"""Diff two BENCH_*.json files (perf-trajectory tracking) with a gate.

Usage: bench_diff.py OLD.json NEW.json [--key f1,f2] [--warn-threshold R]
                     [--fail-threshold R | --no-fail]

Runs are matched by the --key fields (default: flights,threads — pass
"mode,threads" for BENCH_ingest.json) and compared on wall_ms plus every
other *_ms field present in both records, so new phase splits are picked
up without editing this script.

Two thresholds:
  --warn-threshold (default 1.25x): regressions beyond it are printed as
    GitHub Actions ::warning:: lines.
  --fail-threshold (default 4.0x): regressions beyond it are printed as
    ::error:: lines and the exit code is 1 — the gate. The default budget
    is deliberately generous until runner variance is characterized;
    tighten it per-repo via the CLI. --no-fail restores the historical
    warn-only behavior.
"""

import argparse
import json
import sys

# Below this, ratios are timer noise, not signal.
MIN_MS = 1.0


def load_runs(path, key_fields):
    with open(path) as f:
        data = json.load(f)
    runs = {}
    for r in data.get("runs", []):
        if any(k not in r for k in key_fields):
            continue
        runs[tuple(r[k] for k in key_fields)] = r
    return runs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--key", default="flights,threads",
                        help="comma-separated fields identifying a run "
                             "(default: flights,threads)")
    parser.add_argument("--warn-threshold", type=float, default=1.25,
                        help="warn when new > old * R (default 1.25)")
    parser.add_argument("--fail-threshold", type=float, default=4.0,
                        help="fail (exit 1) when new > old * R "
                             "(default 4.0)")
    parser.add_argument("--no-fail", action="store_true",
                        help="never exit non-zero (warn-only mode)")
    args = parser.parse_args()
    key_fields = [k.strip() for k in args.key.split(",") if k.strip()]

    try:
        old_runs = load_runs(args.old, key_fields)
        new_runs = load_runs(args.new, key_fields)
    except (OSError, ValueError, KeyError) as e:
        # In gating mode an unreadable input must not silently pass the
        # gate; callers that tolerate a missing baseline should test for
        # the file before invoking (as CI does) or pass --no-fail.
        if args.no_fail:
            print(f"bench_diff: cannot compare ({e}); skipping")
            return 0
        print(f"::error title=bench_diff cannot compare::{e}")
        return 1

    warned = 0
    failed = 0
    compared = 0
    for key in sorted(set(old_runs) & set(new_runs)):
        old, new = old_runs[key], new_runs[key]
        point = " ".join(f"{k}={v}" for k, v in zip(key_fields, key))
        phases = sorted(k for k in old
                        if k.endswith("_ms") and k in new)
        for phase in phases:
            o, n = float(old[phase]), float(new[phase])
            compared += 1
            if o < MIN_MS and n < MIN_MS:
                continue
            ratio = n / max(o, 1e-9)
            if n > max(o, MIN_MS) * args.fail_threshold and not args.no_fail:
                print(f"::error title=bench regression over budget::"
                      f"{point} {phase}: {o:.3f}ms -> {n:.3f}ms "
                      f"({ratio:.2f}x > {args.fail_threshold:.2f}x budget)")
                failed += 1
            elif n > max(o, MIN_MS) * args.warn_threshold:
                print(f"::warning title=bench regression::"
                      f"{point} {phase}: {o:.3f}ms -> {n:.3f}ms "
                      f"({ratio:.2f}x)")
                warned += 1
    only_old = sorted(set(old_runs) - set(new_runs))
    only_new = sorted(set(new_runs) - set(old_runs))
    if only_old:
        print(f"bench_diff: points dropped since previous run: {only_old}")
    if only_new:
        print(f"bench_diff: new points (no baseline): {only_new}")
    print(f"bench_diff: compared {compared} phase totals over "
          f"{len(set(old_runs) & set(new_runs))} matching points; "
          f"{warned} warning(s), {failed} over the fail budget")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
